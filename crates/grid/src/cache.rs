//! Content-addressed result cache.
//!
//! Every grid point has a canonical content key (`GridPoint::key()` in
//! `mi6-bench`: variant, workload, run options, and seed — everything
//! that determines the simulation's output, and nothing that doesn't).
//! Because simulations are deterministic, that key *is* the result's
//! address: two requests with the same key would produce byte-identical
//! journal lines, so the second one never needs to run. [`ResultCache`]
//! is that admission layer — shard journals already provide it across
//! process restarts, the cache provides it within and across in-process
//! grids, and the future `mi6-serve` daemon will sit directly on it.
//!
//! Values are stored as the journaled line itself (the same append-only
//! JSON the shard journals hold), not a parsed struct: the cache stays
//! format-agnostic and a hit is exactly the bytes a journal replay would
//! have produced. Hit rules are the caller's: `mi6-bench` additionally
//! rejects a hit whose warm-up tag differs from the running grid's, so a
//! cold-run result never leaks into a fork-base grid (which would poison
//! the merge's warm-consistency check).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A thread-safe map from canonical point key to journaled result line.
#[derive(Debug, Default)]
pub struct ResultCache {
    lines: Mutex<HashMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Looks up the journaled line for a point key, counting a hit or
    /// miss.
    pub fn get(&self, key: &str) -> Option<String> {
        let found = self.lines.lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records the journaled line for a point key. First write wins:
    /// results are deterministic, so a concurrent duplicate insert is
    /// byte-identical anyway and keeping the original is free.
    pub fn insert(&self, key: impl Into<String>, line: impl Into<String>) {
        self.lines
            .lock()
            .unwrap()
            .entry(key.into())
            .or_insert_with(|| line.into());
    }

    /// Bulk-loads `(key, line)` pairs — e.g. replaying an existing shard
    /// journal into the cache at daemon startup.
    pub fn preload(&self, entries: impl IntoIterator<Item = (String, String)>) {
        let mut lines = self.lines.lock().unwrap();
        for (key, line) in entries {
            lines.entry(key).or_insert(line);
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().unwrap().is_empty()
    }

    /// Lifetime (hits, misses) of [`ResultCache::get`].
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_and_counters() {
        let cache = ResultCache::new();
        assert!(cache.get("BASE/gcc/40/0/c0ffee").is_none());
        cache.insert("BASE/gcc/40/0/c0ffee", "{\"variant\":\"BASE\"}");
        assert_eq!(
            cache.get("BASE/gcc/40/0/c0ffee").as_deref(),
            Some("{\"variant\":\"BASE\"}")
        );
        assert!(cache.get("FLUSH/gcc/40/0/c0ffee").is_none());
        assert_eq!(cache.stats(), (1, 2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn first_insert_wins() {
        let cache = ResultCache::new();
        cache.insert("k", "original");
        cache.insert("k", "duplicate");
        assert_eq!(cache.get("k").as_deref(), Some("original"));
    }

    #[test]
    fn preload_bulk_loads_a_journal() {
        let cache = ResultCache::new();
        cache.preload([
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "2".to_string()),
        ]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("b").as_deref(), Some("2"));
    }
}
