//! Coverage validation for merging shard files.
//!
//! A merge is only meaningful if the shard set covers every expected grid
//! point exactly once. [`validate_coverage`] compares the expected key
//! set against the keys observed across all shard journals and reports
//! **missing** points (a shard was never run, or was killed and not
//! resumed) and **duplicated** points (the same point journaled twice —
//! overlapping shard specs, or one shard run by two hosts) — both hard
//! errors for the caller. Keys present in the journals but not expected
//! (e.g. merging only figure 13 out of an `--all` shard directory) are
//! reported informationally and ignored.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The coverage defects of a shard set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Expected keys observed zero times.
    pub missing: Vec<String>,
    /// Expected keys observed more than once (with their counts).
    pub duplicate: Vec<(String, usize)>,
    /// Observed keys that were not expected (ignored by the merge; listed
    /// so a config mismatch is visible).
    pub extra: Vec<String>,
}

impl Coverage {
    /// Whether the shard set covers the expectation exactly.
    pub fn is_exact(&self) -> bool {
        self.missing.is_empty() && self.duplicate.is_empty()
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, what: &str, keys: &[String]) -> fmt::Result {
            if keys.is_empty() {
                return Ok(());
            }
            writeln!(f, "{} {} point(s):", keys.len(), what)?;
            for k in keys.iter().take(10) {
                writeln!(f, "  {k}")?;
            }
            if keys.len() > 10 {
                writeln!(f, "  ... and {} more", keys.len() - 10)?;
            }
            Ok(())
        }
        list(f, "missing", &self.missing)?;
        let dups: Vec<String> = self
            .duplicate
            .iter()
            .map(|(k, n)| format!("{k} (x{n})"))
            .collect();
        list(f, "duplicated", &dups)?;
        list(f, "unexpected (ignored)", &self.extra)
    }
}

/// Validates that `observed` covers `expected` exactly once each.
///
/// # Errors
///
/// Returns the full [`Coverage`] report when any expected key is missing
/// or duplicated. Extra observed keys alone do not fail validation; the
/// `Ok` value carries them so the caller can mention the subset.
pub fn validate_coverage<'a>(
    expected: impl IntoIterator<Item = &'a str>,
    observed: impl IntoIterator<Item = &'a str>,
) -> Result<Coverage, Coverage> {
    let expected: BTreeSet<&str> = expected.into_iter().collect();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for k in observed {
        *counts.entry(k).or_insert(0) += 1;
    }
    let cov = Coverage {
        missing: expected
            .iter()
            .filter(|k| !counts.contains_key(**k))
            .map(|k| k.to_string())
            .collect(),
        duplicate: counts
            .iter()
            .filter(|(k, n)| expected.contains(**k) && **n > 1)
            .map(|(k, n)| (k.to_string(), *n))
            .collect(),
        extra: counts
            .keys()
            .filter(|k| !expected.contains(**k))
            .map(|k| k.to_string())
            .collect(),
    };
    if cov.is_exact() {
        Ok(cov)
    } else {
        Err(cov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_coverage_passes() {
        let cov = validate_coverage(["a", "b", "c"], ["c", "a", "b"]).unwrap();
        assert!(cov.is_exact() && cov.extra.is_empty());
    }

    #[test]
    fn missing_point_is_an_error() {
        let err = validate_coverage(["a", "b", "c"], ["a", "c"]).unwrap_err();
        assert_eq!(err.missing, vec!["b"]);
        assert!(err.duplicate.is_empty());
        assert!(format!("{err}").contains("missing"));
    }

    #[test]
    fn duplicated_point_is_an_error() {
        let err = validate_coverage(["a", "b"], ["a", "b", "a"]).unwrap_err();
        assert_eq!(err.duplicate, vec![("a".to_string(), 2)]);
        assert!(err.missing.is_empty());
    }

    #[test]
    fn extra_points_are_tolerated() {
        // Merging a subset (one figure) out of a larger (--all) shard dir.
        let cov = validate_coverage(["a"], ["a", "z1", "z2"]).unwrap();
        assert_eq!(cov.extra, vec!["z1", "z2"]);
        // But a duplicated *extra* key still doesn't fail: it's outside
        // the expectation.
        let cov = validate_coverage(["a"], ["a", "z", "z"]).unwrap();
        assert_eq!(cov.extra, vec!["z"]);
    }
}
