//! The resumable shard journal.
//!
//! One JSONL file per shard: workers append a completed point's JSON line
//! as soon as it finishes, so the file is always a prefix of the shard's
//! work. Restarting a shard opens the journal, replays the parseable
//! lines (skipping finished points), and appends from there. A process
//! killed mid-write leaves at most one torn trailing line, which fails to
//! parse and is simply recomputed — [`Journal::open`] reports it so the
//! caller can log it.
//!
//! The journal is line-oriented and append-only on purpose: `O_APPEND`
//! single-`write` appends are atomic enough for one writer per shard
//! file, and the merge step re-validates global coverage anyway
//! ([`crate::merge`]), so even operator error (two hosts accidentally
//! running the same shard) is caught before any figure is rendered.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// An append-only JSONL shard journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

/// What [`Journal::open`] found on disk.
#[derive(Debug)]
pub struct JournalReplay {
    /// Every complete line already journaled, in file order.
    pub lines: Vec<String>,
    /// Whether a torn (unterminated) trailing line was found and ignored.
    pub torn_tail: bool,
}

impl Journal {
    /// Opens (creating if needed) a journal for appending and replays its
    /// existing complete lines.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be read or
    /// created (the parent directory must already exist).
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(Journal, JournalReplay)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)?;
        let torn_tail = !contents.is_empty() && !contents.ends_with('\n');
        let mut lines: Vec<String> = contents.lines().map(str::to_string).collect();
        if torn_tail {
            // The unterminated tail is a kill artifact, not a record:
            // drop it and truncate it away so the next append starts on
            // a fresh line instead of gluing onto the fragment.
            lines.pop();
            let keep = contents.rfind('\n').map(|i| i + 1).unwrap_or(0);
            file.set_len(keep as u64)?;
        }
        Ok((Journal { path, file }, JournalReplay { lines, torn_tail }))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record line (the line must not contain `\n`) and
    /// flushes it to the OS, so a later kill cannot lose it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed write.
    pub fn append(&mut self, line: &str) -> std::io::Result<()> {
        debug_assert!(!line.contains('\n'), "journal records are single lines");
        // One write call per record: an O_APPEND write of a small buffer
        // lands contiguously, so concurrent *readers* (merge on a live
        // dir) see only whole or torn-tail lines, never interleaving.
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.file.write_all(buf.as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mi6-grid-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_then_replay() {
        let path = scratch("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, replay) = Journal::open(&path).unwrap();
            assert!(replay.lines.is_empty() && !replay.torn_tail);
            j.append("{\"a\":1}").unwrap();
            j.append("{\"a\":2}").unwrap();
        }
        let (mut j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.lines, vec!["{\"a\":1}", "{\"a\":2}"]);
        assert!(!replay.torn_tail);
        // Appending after a replay continues the file.
        j.append("{\"a\":3}").unwrap();
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.lines.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_reported() {
        let path = scratch("torn.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"a\":2}\n{\"a\":3,\"tr").unwrap();
        let (mut j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.lines, vec!["{\"a\":1}", "{\"a\":2}"]);
        assert!(replay.torn_tail);
        // The torn fragment was truncated away, so the recomputed record
        // lands on its own fresh line.
        j.append("{\"a\":3}").unwrap();
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(
            replay.lines,
            vec!["{\"a\":1}", "{\"a\":2}", "{\"a\":3}"],
            "append after torn tail must not glue onto the fragment"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
