//! A minimal parser for flat JSON objects — the grid interchange format.
//!
//! Shard journals hold one hand-rolled JSON object per line with string
//! and number values only (see `PointResult::to_json` in `mi6-bench`).
//! This parser covers exactly that subset: one object, string keys,
//! string/number/bool values, no nesting. Integers are kept as exact
//! `u64`s (seeds are full 64-bit values a round-trip through `f64` would
//! corrupt); other numbers are `f64`s parsed with `str::parse`, which is
//! the exact inverse of the `{}` formatting the writer uses.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A string (escapes `\"` and `\\` only, as the writer emits).
    Str(String),
    /// A non-negative integer that fits `u64` exactly.
    Int(u64),
    /// Any other number.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parse error: what went wrong and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub what: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> JsonError {
        JsonError {
            what: what.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1);
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 2;
                }
                Some(&b) => {
                    if !b.is_ascii() {
                        // Multi-byte UTF-8: copy the whole char.
                        let s = &self.bytes[self.pos..];
                        let ch = std::str::from_utf8(s)
                            .ok()
                            .and_then(|s| s.chars().next())
                            .ok_or_else(|| self.err("invalid utf-8"))?;
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    } else {
                        out.push(b as char);
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonValue::Bool(false))
            }
            Some(_) => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let token = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid number"))?;
                if token.is_empty() {
                    return Err(self.err("expected a value"));
                }
                if token.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(n) = token.parse::<u64>() {
                        return Ok(JsonValue::Int(n));
                    }
                }
                token
                    .parse::<f64>()
                    .map(JsonValue::Float)
                    .map_err(|_| JsonError {
                        what: format!("bad number `{token}`"),
                        at: start,
                    })
            }
            None => Err(self.err("expected a value")),
        }
    }
}

/// Parses one flat JSON object into key→value map form.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input — including a truncated line,
/// which is how a journal torn by a mid-write kill is detected.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.bytes.get(p.pos) == Some(&b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.bytes.get(p.pos) {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(p.err("expected `,` or `}`")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after object"));
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_point_line() {
        let line = "{\"variant\":\"F+P+M+A\",\"workload\":\"gcc\",\"kinsts\":2000,\
                    \"seed\":13835058055282163712,\"branch_mpki\":13.537,\"ok\":true}";
        let obj = parse_object(line).unwrap();
        assert_eq!(obj["variant"].as_str(), Some("F+P+M+A"));
        assert_eq!(obj["kinsts"].as_u64(), Some(2000));
        // A seed above 2^53: exact through the Int path, corrupted via f64.
        assert_eq!(obj["seed"].as_u64(), Some(13835058055282163712));
        assert_eq!(obj["branch_mpki"].as_f64(), Some(13.537));
        assert_eq!(obj["ok"], JsonValue::Bool(true));
    }

    #[test]
    fn float_round_trips_exactly() {
        for x in [0.1f64, 18.046512341, 1e-12, 123456.789012345] {
            let line = format!("{{\"x\":{x}}}");
            let obj = parse_object(&line).unwrap();
            assert_eq!(obj["x"].as_f64(), Some(x), "{line}");
        }
    }

    #[test]
    fn rejects_torn_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":1",
            "{\"a\":}",
            "{\"a\":1,\"b\":\"xyz",
            "{\"a\":1}{",
            "not json",
        ] {
            assert!(parse_object(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn empty_object_and_escapes() {
        assert!(parse_object("{}").unwrap().is_empty());
        let obj = parse_object("{\"s\":\"a\\\"b\\\\c\"}").unwrap();
        assert_eq!(obj["s"].as_str(), Some("a\"b\\c"));
    }
}
