//! The slice-multiplexing machine driver.
//!
//! The work-stealing [`crate::Scheduler`] gives every task a thread for
//! its whole lifetime — fine when tasks run hot start to finish, wasteful
//! when they spend most of their time provably inert (a machine stalled
//! on a far-future timer interrupt still owns its thread). The driver
//! breaks that coupling: tasks implement [`SliceTask`] and run in
//! *slices*, so M in-flight tasks multiplex over K worker threads
//! (`capacity = workers × mux`). Runnable tasks wait in a shared FIFO;
//! tasks that report themselves blocked until a future simulated cycle
//! park in a min-heap keyed by wake cycle, and are resumed
//! earliest-deadline-first once no runnable work remains.
//!
//! Admission is lazy: task `i` is materialized by the caller's `spawn`
//! closure only when a worker actually has a slot for it, so a
//! 10,000-point grid never holds 10,000 machines in memory — at most
//! `capacity` of them.
//!
//! Scheduling cannot affect results: each task is stepped by at most one
//! worker at a time, and a correctly written [`SliceTask`] is
//! deterministic in its own slice sequence (the simulator's
//! `Machine::step_slice` contract guarantees the slice sequence itself
//! is invisible), so driver output is byte-identical to serial
//! execution no matter how slices interleave across workers.
//!
//! Cancellation mirrors the scheduler: a shared flag checked between
//! slices by every worker, an optional deadline armed by a
//! collector-side watchdog, and cooperative mid-slice interruption left
//! to the task (machines poll the same flag internally). Tasks that were
//! started but never finished are handed back one [`SliceTask::abandon`]
//! call at shutdown so partial progress can be recorded.

use crate::scheduler::WorkerCtx;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// What one slice of a task produced.
#[derive(Debug)]
pub enum Step<D> {
    /// Terminal: the task finished with a result.
    Done(D),
    /// The slice budget ran out mid-work; the task is immediately
    /// runnable again.
    Yield,
    /// The task cannot progress before simulated cycle `wake`; park it.
    /// Simulated time has no host-time meaning, so a parked task is
    /// resumed (earliest wake first) as soon as a worker has nothing
    /// runnable — `wake` is a priority, not a wait.
    Blocked {
        /// Simulated cycle the task wants to resume at.
        wake: u64,
    },
    /// Terminal without a result: the task was cancelled or timed out
    /// mid-slice and has already recorded whatever it wants to keep.
    Abort,
}

/// A resumable unit of work the driver can multiplex.
pub trait SliceTask: Send {
    /// The finished-task result type.
    type Done: Send;

    /// Runs one slice. The driver guarantees calls are serialized per
    /// task (never concurrent), but consecutive slices of one task may
    /// run on different workers.
    fn step(&mut self, ctx: &WorkerCtx) -> Step<Self::Done>;

    /// Called once at driver shutdown for a task that was admitted but
    /// never reached a terminal step (deadline or cancellation while it
    /// sat in a queue). Record partial progress here; default: nothing.
    fn abandon(&mut self) {}
}

/// One parked task, ordered for a min-heap: earliest wake cycle first,
/// FIFO within a wake cycle.
struct Parked<T> {
    wake: u64,
    seq: u64,
    index: usize,
    task: T,
}

impl<T> PartialEq for Parked<T> {
    fn eq(&self, other: &Self) -> bool {
        self.wake == other.wake && self.seq == other.seq
    }
}
impl<T> Eq for Parked<T> {}
impl<T> PartialOrd for Parked<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Parked<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum wake.
        other.wake.cmp(&self.wake).then(other.seq.cmp(&self.seq))
    }
}

/// Shared driver state behind one mutex.
struct Pool<T> {
    /// Next unadmitted task index (tasks are admitted in index order).
    next: usize,
    /// Tasks ready to run another slice, FIFO.
    runnable: VecDeque<(usize, T)>,
    /// Tasks parked until a future simulated cycle, min-heap by wake.
    parked: BinaryHeap<Parked<T>>,
    /// Tasks currently held by a worker (being spawned or stepped).
    stepping: usize,
    /// Monotonic counter for heap FIFO tie-breaks.
    seq: u64,
}

impl<T> Pool<T> {
    fn in_flight(&self) -> usize {
        self.runnable.len() + self.parked.len() + self.stepping
    }
}

/// What a worker decided to do after consulting the pool.
enum Picked<T> {
    /// Step this already-admitted task.
    Run(usize, T),
    /// Admit task `i`: spawn it (outside the lock) and step it.
    Admit(usize),
    /// Nothing to do right now, but work is still in flight elsewhere.
    Wait,
    /// Everything is finished.
    Exit,
}

/// The multiplexing driver configuration.
#[derive(Clone, Debug)]
pub struct MachineDriver {
    /// Worker thread count (clamped to at least 1 and at most the task
    /// count).
    pub workers: usize,
    /// In-flight tasks *per worker* (the `--mux` oversubscription
    /// factor, clamped to at least 1): up to `workers × mux` tasks are
    /// admitted at once.
    pub mux: usize,
    /// Stop dispatching and cancel in-flight tasks once this instant
    /// passes.
    pub deadline: Option<Instant>,
    /// An externally shared cancel flag (e.g. a Ctrl-C handler); the
    /// driver creates its own when absent.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl MachineDriver {
    /// A driver with `workers` threads, no oversubscription, no deadline.
    pub fn new(workers: usize) -> MachineDriver {
        MachineDriver {
            workers,
            mux: 1,
            deadline: None,
            cancel: None,
        }
    }

    /// Sets the oversubscription factor (in-flight tasks per worker).
    pub fn with_mux(mut self, mux: usize) -> MachineDriver {
        self.mux = mux;
        self
    }

    /// Sets the deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> MachineDriver {
        self.deadline = deadline;
        self
    }

    /// Runs tasks `0..n`, spawning each lazily via `spawn` when a slot
    /// frees up and streaming completions to `on_done` on the caller's
    /// thread (in completion order; use the returned vector for task
    /// order).
    pub fn run<T: SliceTask>(
        &self,
        n: usize,
        spawn: impl Fn(usize) -> T + Sync,
        mut on_done: impl FnMut(usize, &T::Done),
    ) -> DriverOutcome<T::Done> {
        let mut results: Vec<Option<T::Done>> = (0..n).map(|_| None).collect();
        if n == 0 {
            return DriverOutcome {
                results,
                completed: 0,
                cancelled: 0,
                deadline_hit: false,
            };
        }
        let workers = self.workers.clamp(1, n);
        let capacity = workers.saturating_mul(self.mux.max(1));
        let cancel = self
            .cancel
            .clone()
            .unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
        let deadline_hit = AtomicBool::new(false);
        let pool = Mutex::new(Pool::<T> {
            next: 0,
            runnable: VecDeque::new(),
            parked: BinaryHeap::new(),
            stepping: 0,
            seq: 0,
        });
        let wakeup = Condvar::new();

        let (tx, rx) = mpsc::channel::<(usize, Option<T::Done>)>();
        thread::scope(|s| {
            for w in 0..workers {
                let tx = tx.clone();
                let pool = &pool;
                let wakeup = &wakeup;
                let cancel = Arc::clone(&cancel);
                let deadline = self.deadline;
                let deadline_hit = &deadline_hit;
                let spawn = &spawn;
                s.spawn(move || {
                    let ctx = WorkerCtx { worker: w, cancel };
                    loop {
                        if let Some(d) = deadline {
                            if Instant::now() >= d && !ctx.cancel.swap(true, Ordering::SeqCst) {
                                deadline_hit.store(true, Ordering::SeqCst);
                            }
                        }
                        if ctx.cancel.load(Ordering::SeqCst) {
                            wakeup.notify_all();
                            break;
                        }
                        let picked = {
                            let mut pool = pool.lock().unwrap();
                            if let Some((i, task)) = pool.runnable.pop_front() {
                                pool.stepping += 1;
                                Picked::Run(i, task)
                            } else if pool.next < n && pool.in_flight() < capacity {
                                let i = pool.next;
                                pool.next += 1;
                                pool.stepping += 1;
                                Picked::Admit(i)
                            } else if let Some(p) = pool.parked.pop() {
                                pool.stepping += 1;
                                Picked::Run(p.index, p.task)
                            } else if pool.next >= n && pool.stepping == 0 {
                                Picked::Exit
                            } else {
                                // Work is in flight on other workers; it
                                // may come back runnable. The timeout
                                // doubles as the cancel/deadline re-check
                                // cadence.
                                let _guard = wakeup
                                    .wait_timeout(pool, Duration::from_millis(10))
                                    .unwrap();
                                Picked::Wait
                            }
                        };
                        let (i, mut task) = match picked {
                            Picked::Run(i, task) => (i, task),
                            Picked::Admit(i) => (i, spawn(i)),
                            Picked::Wait => continue,
                            Picked::Exit => {
                                wakeup.notify_all();
                                break;
                            }
                        };
                        let step = task.step(&ctx);
                        let mut pool = pool.lock().unwrap();
                        pool.stepping -= 1;
                        match step {
                            Step::Done(d) => {
                                drop(pool);
                                if tx.send((i, Some(d))).is_err() {
                                    break;
                                }
                            }
                            Step::Abort => {
                                drop(pool);
                                if tx.send((i, None)).is_err() {
                                    break;
                                }
                            }
                            Step::Yield => {
                                pool.runnable.push_back((i, task));
                                drop(pool);
                            }
                            Step::Blocked { wake } => {
                                let seq = pool.seq;
                                pool.seq += 1;
                                pool.parked.push(Parked {
                                    wake,
                                    seq,
                                    index: i,
                                    task,
                                });
                                drop(pool);
                            }
                        }
                        wakeup.notify_all();
                    }
                });
            }
            drop(tx);
            // Collector doubling as the deadline watchdog, exactly as in
            // the scheduler: workers only check the clock between
            // slices, so the recv timeout guarantees the cancel flag is
            // armed the moment the budget expires even if every worker
            // is mid-slice.
            let mut watchdog = self.deadline;
            loop {
                let received = match watchdog {
                    Some(d) => match rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                        Ok(msg) => Some(msg),
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if !cancel.swap(true, Ordering::SeqCst) {
                                deadline_hit.store(true, Ordering::SeqCst);
                            }
                            watchdog = None; // armed; plain recv from here
                            continue;
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => None,
                    },
                    None => rx.recv().ok(),
                };
                let Some((i, res)) = received else { break };
                if let Some(r) = res {
                    on_done(i, &r);
                    results[i] = Some(r);
                }
            }
        });
        // Tasks stranded in the queues by a cancel/deadline shutdown get
        // one chance to record partial progress.
        let pool = pool.into_inner().unwrap();
        for (_, mut task) in pool.runnable {
            task.abandon();
        }
        for mut p in pool.parked.into_vec() {
            p.task.abandon();
        }
        let completed = results.iter().filter(|r| r.is_some()).count();
        DriverOutcome {
            results,
            completed,
            cancelled: n - completed,
            deadline_hit: deadline_hit.load(Ordering::SeqCst),
        }
    }
}

/// What [`MachineDriver::run`] produced.
#[derive(Debug)]
pub struct DriverOutcome<D> {
    /// Per-task results, in task order; `None` = cancelled, aborted, or
    /// never admitted.
    pub results: Vec<Option<D>>,
    /// Tasks that finished.
    pub completed: usize,
    /// Tasks that did not.
    pub cancelled: usize,
    /// Whether the deadline fired.
    pub deadline_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A task that yields `yields` times, then completes with its index.
    struct Chatty {
        index: usize,
        yields: usize,
    }

    impl SliceTask for Chatty {
        type Done = usize;
        fn step(&mut self, _ctx: &WorkerCtx) -> Step<usize> {
            if self.yields == 0 {
                Step::Done(self.index)
            } else {
                self.yields -= 1;
                Step::Yield
            }
        }
    }

    #[test]
    fn multiplexed_tasks_all_complete_in_order() {
        let driver = MachineDriver::new(3).with_mux(4);
        let mut streamed = 0usize;
        let out = driver.run(
            50,
            |i| Chatty {
                index: i,
                yields: i % 7,
            },
            |_, _| streamed += 1,
        );
        assert_eq!(out.completed, 50);
        assert_eq!(out.cancelled, 0);
        assert_eq!(streamed, 50);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r, Some(i));
        }
    }

    #[test]
    fn admission_never_exceeds_capacity() {
        // Peak concurrent admissions is bounded by workers × mux.
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        struct Counted(usize);
        impl SliceTask for Counted {
            type Done = ();
            fn step(&mut self, _ctx: &WorkerCtx) -> Step<()> {
                if self.0 == 0 {
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                    Step::Done(())
                } else {
                    self.0 -= 1;
                    Step::Yield
                }
            }
        }
        LIVE.store(0, Ordering::SeqCst);
        PEAK.store(0, Ordering::SeqCst);
        let out = MachineDriver::new(2).with_mux(3).run(
            64,
            |i| {
                let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(live, Ordering::SeqCst);
                Counted(i % 5)
            },
            |_, _| {},
        );
        assert_eq!(out.completed, 64);
        assert!(
            PEAK.load(Ordering::SeqCst) <= 6,
            "capacity exceeded: {} admitted at once",
            PEAK.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn blocked_tasks_park_and_resume() {
        // Every task blocks once on a distinct wake cycle, then
        // completes. All must come back from the heap.
        struct Sleeper {
            index: usize,
            slept: bool,
        }
        impl SliceTask for Sleeper {
            type Done = usize;
            fn step(&mut self, _ctx: &WorkerCtx) -> Step<usize> {
                if self.slept {
                    Step::Done(self.index)
                } else {
                    self.slept = true;
                    Step::Blocked {
                        wake: 1_000_000 - self.index as u64,
                    }
                }
            }
        }
        let out = MachineDriver::new(2).with_mux(8).run(
            20,
            |i| Sleeper {
                index: i,
                slept: false,
            },
            |_, _| {},
        );
        assert_eq!(out.completed, 20);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r, Some(i));
        }
    }

    #[test]
    fn parked_heap_resumes_earliest_wake_first() {
        // One worker, all tasks admitted then parked: resume order must
        // follow wake cycles, not admission order.
        let order = Mutex::new(Vec::new());
        struct Recorder<'a> {
            index: usize,
            wake: u64,
            slept: bool,
            order: &'a Mutex<Vec<usize>>,
        }
        impl SliceTask for Recorder<'_> {
            type Done = ();
            fn step(&mut self, _ctx: &WorkerCtx) -> Step<()> {
                if self.slept {
                    self.order.lock().unwrap().push(self.index);
                    Step::Done(())
                } else {
                    self.slept = true;
                    Step::Blocked { wake: self.wake }
                }
            }
        }
        let wakes = [50u64, 10, 40, 20, 30];
        let out = MachineDriver::new(1).with_mux(5).run(
            5,
            |i| Recorder {
                index: i,
                wake: wakes[i],
                slept: false,
                order: &order,
            },
            |_, _| {},
        );
        assert_eq!(out.completed, 5);
        // Earliest wake (10, task 1) resumes first, latest (50, task 0)
        // last.
        assert_eq!(*order.lock().unwrap(), vec![1, 3, 4, 2, 0]);
    }

    #[test]
    fn cancel_abandons_unfinished_tasks() {
        static ABANDONED: AtomicUsize = AtomicUsize::new(0);
        struct Stubborn {
            flag: Arc<AtomicBool>,
        }
        impl SliceTask for Stubborn {
            type Done = ();
            fn step(&mut self, _ctx: &WorkerCtx) -> Step<()> {
                self.flag.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(1));
                Step::Yield
            }
            fn abandon(&mut self) {
                ABANDONED.fetch_add(1, Ordering::SeqCst);
            }
        }
        ABANDONED.store(0, Ordering::SeqCst);
        let flag = Arc::new(AtomicBool::new(false));
        let mut driver = MachineDriver::new(2).with_mux(2);
        driver.cancel = Some(Arc::clone(&flag));
        let out = driver.run(
            8,
            |_| Stubborn {
                flag: Arc::clone(&flag),
            },
            |_, _| {},
        );
        assert_eq!(out.completed, 0);
        assert_eq!(out.cancelled, 8);
        assert!(
            ABANDONED.load(Ordering::SeqCst) > 0,
            "no queued task was offered an abandon call"
        );
    }

    #[test]
    fn deadline_arms_cancel_mid_slice() {
        struct Slow;
        impl SliceTask for Slow {
            type Done = ();
            fn step(&mut self, ctx: &WorkerCtx) -> Step<()> {
                for _ in 0..2_000 {
                    if ctx.cancel.load(Ordering::SeqCst) {
                        return Step::Abort;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Step::Done(())
            }
        }
        let t0 = Instant::now();
        let out = MachineDriver::new(1)
            .with_deadline(Some(Instant::now() + Duration::from_millis(50)))
            .run(1, |_| Slow, |_, _| {});
        assert!(out.deadline_hit);
        assert_eq!(out.completed, 0);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "watchdog failed to cancel the in-flight slice"
        );
    }

    #[test]
    fn empty_task_list() {
        let out = MachineDriver::new(4).run(
            0,
            |_| Chatty {
                index: 0,
                yields: 0,
            },
            |_, _| {},
        );
        assert_eq!(out.completed, 0);
        assert!(out.results.is_empty());
    }
}
