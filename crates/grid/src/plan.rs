//! The deterministic shard planner.
//!
//! A grid point is identified by a canonical key string (the caller's
//! format; `mi6-bench` uses `variant/workload/kinsts/timer/seed-hex`).
//! [`shard_of`] hashes the key with FNV-1a and reduces it modulo the
//! shard count, so the assignment depends only on the key bytes and `N` —
//! every process and host computes the identical partition with no
//! coordination. A host told to run shard `i/N` filters the full grid
//! down to its own points; any set of hosts covering all of `0..N` covers
//! the grid exactly once.

use std::fmt;
use std::str::FromStr;

/// FNV-1a 64-bit hash (stable across platforms and builds; the shard
/// assignment must never change under a compiler or stdlib upgrade).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The shard (in `0..total`) a point key belongs to.
///
/// # Panics
///
/// Panics if `total` is zero.
pub fn shard_of(key: &str, total: u32) -> u32 {
    assert!(total > 0, "a grid has at least one shard");
    (fnv1a64(key.as_bytes()) % total as u64) as u32
}

/// One shard of an `N`-way split: `index/total`, parsed from the CLI's
/// `--shard i/N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, in `0..total`.
    pub index: u32,
    /// Total number of shards the grid is split into.
    pub total: u32,
}

impl ShardSpec {
    /// A spec covering the whole grid (shard 0 of 1).
    pub fn whole() -> ShardSpec {
        ShardSpec { index: 0, total: 1 }
    }

    /// Whether a point key belongs to this shard.
    pub fn contains(&self, key: &str) -> bool {
        shard_of(key, self.total) == self.index
    }

    /// The shard journal's file name (`shard-i-of-N.jsonl`).
    pub fn file_name(&self) -> String {
        format!("shard-{}-of-{}.jsonl", self.index, self.total)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

/// Error from parsing a `ShardSpec`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpecError(String);

impl fmt::Display for ShardSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad shard spec `{}` (expected i/N with i < N)", self.0)
    }
}

impl std::error::Error for ShardSpecError {}

impl FromStr for ShardSpec {
    type Err = ShardSpecError;

    fn from_str(s: &str) -> Result<ShardSpec, ShardSpecError> {
        let err = || ShardSpecError(s.to_string());
        let (i, n) = s.split_once('/').ok_or_else(err)?;
        let index: u32 = i.parse().map_err(|_| err())?;
        let total: u32 = n.parse().map_err(|_| err())?;
        if total == 0 || index >= total {
            return Err(err());
        }
        Ok(ShardSpec { index, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let s: ShardSpec = "2/5".parse().unwrap();
        assert_eq!(s, ShardSpec { index: 2, total: 5 });
        assert_eq!(s.to_string(), "2/5");
        assert_eq!(s.file_name(), "shard-2-of-5.jsonl");
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in ["", "3", "3/3", "5/3", "-1/3", "a/b", "1/0"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn shards_partition_the_keys() {
        let keys: Vec<String> = (0..500).map(|i| format!("point-{i}")).collect();
        for total in [1u32, 2, 3, 7] {
            let shards: Vec<ShardSpec> =
                (0..total).map(|index| ShardSpec { index, total }).collect();
            for k in &keys {
                let owners = shards.iter().filter(|s| s.contains(k)).count();
                assert_eq!(owners, 1, "{k} owned by {owners} shards of {total}");
            }
        }
    }

    #[test]
    fn assignment_is_stable() {
        // Pinned values: the shard assignment is an on-disk contract
        // between hosts — it must never drift.
        assert_eq!(shard_of("BASE/hmmer/2000/250000/c0ffee", 3), 1);
        assert_eq!(shard_of("F+P+M+A/gcc/2000/0/c0ffee", 3), 1);
        assert_eq!(u64::from(shard_of("", 7)), fnv1a64(b"") % 7);
    }

    #[test]
    fn assignment_is_roughly_balanced() {
        let total = 4u32;
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[shard_of(&format!("key-{i}"), total) as usize] += 1;
        }
        for c in counts {
            assert!((150..=350).contains(&c), "unbalanced: {counts:?}");
        }
    }
}
