//! In-memory warm-snapshot pool.
//!
//! Grid runs fork many measurement points off a handful of warmed-up
//! machine states. The on-disk snapshot cache (`--checkpoint-dir`) makes
//! those states durable across processes, but an in-process grid paying a
//! file write plus N file reads per warm state is pure overhead: the
//! bytes are already in memory. [`SnapshotPool`] keeps them there —
//! snapshot blobs produced by [`crate::Machine::snapshot`] (the existing
//! codec, same `FORMAT_VERSION`, byte-identical to what the disk path
//! stores), shared as `Arc`s so concurrent restores clone a pointer, not
//! a buffer.
//!
//! Keying. A snapshot is only restorable into a machine whose
//! configuration fingerprint matches: the *strict* fingerprint for exact
//! restores, the *structural* fingerprint for cross-variant
//! `restore_forked` (see `Machine::restore_forked` for why the split
//! exists). [`PoolKey`] therefore pairs the relevant fingerprint with a
//! caller-composed warm-up identity tag (workload, run options, and warm
//! point — `mi6-bench` uses the warm snapshot file stem so the pool and
//! the disk cache name states identically).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one warmed-up machine state.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolKey {
    /// Configuration fingerprint the snapshot restores into: the strict
    /// fingerprint ([`crate::Machine::strict_fingerprint`]) for exact
    /// restores, the structural fingerprint for cross-variant forks.
    pub config: u64,
    /// Warm-up identity: workload, run options, and warm point, as
    /// composed by the caller.
    pub tag: String,
}

/// A thread-safe in-memory cache of warm snapshot blobs.
///
/// Hit/miss counters are monotonic over the pool's lifetime; they exist
/// so benchmarks and the future `mi6-serve` daemon can report pool
/// effectiveness.
#[derive(Debug, Default)]
pub struct SnapshotPool {
    blobs: Mutex<HashMap<PoolKey, Arc<Vec<u8>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SnapshotPool {
    /// An empty pool.
    pub fn new() -> SnapshotPool {
        SnapshotPool::default()
    }

    /// Looks up a snapshot, counting a hit or miss.
    pub fn get(&self, key: &PoolKey) -> Option<Arc<Vec<u8>>> {
        let found = self.blobs.lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a snapshot blob, returning the shared handle. A re-insert
    /// under an existing key keeps the original blob (warm-ups are
    /// deterministic, so both byte-identical copies are equally valid —
    /// keeping the first lets concurrent producers race harmlessly).
    pub fn insert(&self, key: PoolKey, snapshot: Vec<u8>) -> Arc<Vec<u8>> {
        self.blobs
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::new(snapshot))
            .clone()
    }

    /// Whether any entry carries this warm-up tag (used by warm phases to
    /// skip re-simulating a warm-up the pool already holds, before the
    /// target machine — and thus its fingerprint — exists).
    pub fn contains_tag(&self, tag: &str) -> bool {
        self.blobs.lock().unwrap().keys().any(|k| k.tag == tag)
    }

    /// Number of pooled snapshots.
    pub fn len(&self) -> usize {
        self.blobs.lock().unwrap().len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.lock().unwrap().is_empty()
    }

    /// Total bytes held (sum of blob lengths).
    pub fn bytes(&self) -> usize {
        self.blobs.lock().unwrap().values().map(|b| b.len()).sum()
    }

    /// Lifetime (hits, misses) of [`SnapshotPool::get`].
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(config: u64, tag: &str) -> PoolKey {
        PoolKey {
            config,
            tag: tag.to_string(),
        }
    }

    #[test]
    fn get_insert_and_counters() {
        let pool = SnapshotPool::new();
        assert!(pool.get(&key(1, "a")).is_none());
        let blob = pool.insert(key(1, "a"), vec![1, 2, 3]);
        assert_eq!(*blob, vec![1, 2, 3]);
        assert_eq!(*pool.get(&key(1, "a")).unwrap(), vec![1, 2, 3]);
        assert!(
            pool.get(&key(2, "a")).is_none(),
            "fingerprint is part of the key"
        );
        assert_eq!(pool.stats(), (1, 2));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.bytes(), 3);
    }

    #[test]
    fn reinsert_keeps_the_first_blob() {
        let pool = SnapshotPool::new();
        pool.insert(key(1, "a"), vec![1]);
        let kept = pool.insert(key(1, "a"), vec![2]);
        assert_eq!(*kept, vec![1]);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn tag_membership_ignores_fingerprint() {
        let pool = SnapshotPool::new();
        pool.insert(key(7, "warm-BASE-gcc"), vec![0]);
        assert!(pool.contains_tag("warm-BASE-gcc"));
        assert!(!pool.contains_tag("warm-BASE-mcf"));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let pool = Arc::new(SnapshotPool::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..100u64 {
                        pool.insert(key(i % 8, "t"), vec![t; 16]);
                        pool.get(&key(i % 8, "t"));
                    }
                });
            }
        });
        assert_eq!(pool.len(), 8);
    }
}
