//! The seven evaluation processor variants (paper Section 7).
//!
//! | variant | what it adds on BASE | evaluated in |
//! |---|---|---|
//! | BASE | nothing (insecure RiscyOO) | all figures |
//! | FLUSH | scrub per-core state on every trap/return | Figures 5–7 |
//! | PART | LLC set partitioning (`{R[1:0], A[7:0]}` index) | Figures 8–9 |
//! | MISS | 12 LLC MSHRs in 4 banks | Figure 10 |
//! | ARB | +8 cycles LLC pipeline latency | Figure 11 |
//! | NONSPEC | memory instructions rename only on empty ROB | Figure 12 |
//! | F+P+M+A | FLUSH + PART + MISS + ARB | Figure 13 |
//!
//! [`Variant::SecureMi6`] additionally enables the *real* multi-core MI6
//! LLC (Figure 3: round-robin arbiter, split UQs, duplicated Downgrade-L1,
//! retry-bit DQ, per-core MSHR partitions) plus the machine-mode
//! speculation guard and DRAM-region checks — the configuration the
//! security tests use to demonstrate non-interference.

use mi6_core::{CoreConfig, SecurityConfig};
use mi6_mem::{LlcIndexing, MemConfig, MshrOrg};
use std::fmt;

/// One of the paper's processor configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Insecure baseline RiscyOO.
    Base,
    /// Flush per-core microarchitectural state on every trap and return.
    Flush,
    /// LLC set partitioning.
    Part,
    /// LLC MSHR partitioning and sizing (12 entries, 4 banks).
    Miss,
    /// LLC pipeline + 8 cycles (round-robin arbiter latency model).
    Arb,
    /// Non-speculative memory instructions everywhere.
    NonSpec,
    /// FLUSH + PART + MISS + ARB (the enclave-overhead configuration).
    Fpma,
    /// Full MI6 with the Figure-3 LLC and all guards.
    SecureMi6,
}

impl Variant {
    /// All evaluation variants, in paper order.
    pub const ALL: [Variant; 8] = [
        Variant::Base,
        Variant::Flush,
        Variant::Part,
        Variant::Miss,
        Variant::Arb,
        Variant::NonSpec,
        Variant::Fpma,
        Variant::SecureMi6,
    ];

    /// The memory configuration for this variant with `cores` cores.
    pub fn mem_config(self, cores: usize) -> MemConfig {
        let mut cfg = MemConfig::paper_base();
        match self {
            Variant::Base | Variant::Flush | Variant::NonSpec => {}
            Variant::Part => {
                cfg.llc.indexing = LlcIndexing::Partitioned { region_bits: 2 };
            }
            Variant::Miss => {
                cfg.llc.mshrs = MshrOrg::Banked {
                    total: 12,
                    banks: 4,
                };
            }
            Variant::Arb => {
                cfg.llc.pipeline_latency += 8;
            }
            Variant::Fpma => {
                cfg.llc.indexing = LlcIndexing::Partitioned { region_bits: 2 };
                cfg.llc.mshrs = MshrOrg::Banked {
                    total: 12,
                    banks: 4,
                };
                cfg.llc.pipeline_latency += 8;
            }
            Variant::SecureMi6 => {
                cfg = MemConfig::paper_secure(cores);
            }
        }
        cfg
    }

    /// The core security configuration for this variant.
    pub fn security_config(self) -> SecurityConfig {
        match self {
            Variant::Base | Variant::Part | Variant::Miss | Variant::Arb => {
                SecurityConfig::insecure()
            }
            Variant::Flush | Variant::Fpma => SecurityConfig {
                flush_on_trap: true,
                ..SecurityConfig::insecure()
            },
            Variant::NonSpec => SecurityConfig {
                nonspec_all_modes: true,
                ..SecurityConfig::insecure()
            },
            Variant::SecureMi6 => SecurityConfig::mi6(),
        }
    }

    /// The core structural configuration (identical across variants).
    pub fn core_config(self) -> CoreConfig {
        CoreConfig::paper()
    }

    /// Position of this variant in [`Variant::ALL`] (the stable id used
    /// by the snapshot header).
    pub fn index(self) -> u8 {
        Variant::ALL
            .iter()
            .position(|v| *v == self)
            .expect("every variant is in ALL") as u8
    }

    /// The variant at `index` in [`Variant::ALL`], if in range.
    pub fn from_index(index: u8) -> Option<Variant> {
        Variant::ALL.get(index as usize).copied()
    }

    /// The variant whose paper name is `name` (the inverse of
    /// [`Variant::name`]; how shard-journal JSON lines map back to
    /// variants).
    pub fn from_name(name: &str) -> Option<Variant> {
        Variant::ALL.into_iter().find(|v| v.name() == name)
    }

    /// The paper's name for this variant.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Base => "BASE",
            Variant::Flush => "FLUSH",
            Variant::Part => "PART",
            Variant::Miss => "MISS",
            Variant::Arb => "ARB",
            Variant::NonSpec => "NONSPEC",
            Variant::Fpma => "F+P+M+A",
            Variant::SecureMi6 => "MI6",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_mem::LlcConfig;

    #[test]
    fn base_is_paper_base() {
        assert_eq!(Variant::Base.mem_config(1), MemConfig::paper_base());
        assert_eq!(Variant::Base.security_config(), SecurityConfig::insecure());
    }

    #[test]
    fn arb_adds_eight_cycles() {
        let base = LlcConfig::paper_base().pipeline_latency;
        assert_eq!(Variant::Arb.mem_config(1).llc.pipeline_latency, base + 8);
    }

    #[test]
    fn miss_banks_mshrs() {
        assert_eq!(
            Variant::Miss.mem_config(1).llc.mshrs,
            MshrOrg::Banked {
                total: 12,
                banks: 4
            }
        );
    }

    #[test]
    fn fpma_combines_all() {
        let cfg = Variant::Fpma.mem_config(1);
        assert_eq!(
            cfg.llc.indexing,
            LlcIndexing::Partitioned { region_bits: 2 }
        );
        assert_eq!(
            cfg.llc.mshrs,
            MshrOrg::Banked {
                total: 12,
                banks: 4
            }
        );
        assert_eq!(
            cfg.llc.pipeline_latency,
            LlcConfig::paper_base().pipeline_latency + 8
        );
        assert!(Variant::Fpma.security_config().flush_on_trap);
        assert!(!Variant::Fpma.security_config().nonspec_all_modes);
    }

    #[test]
    fn secure_uses_figure_3_llc() {
        let cfg = Variant::SecureMi6.mem_config(2);
        assert_eq!(cfg, MemConfig::paper_secure(2));
        let sec = Variant::SecureMi6.security_config();
        assert!(sec.machine_mode_guard && sec.region_checks);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = Variant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), Variant::ALL.len());
    }

    #[test]
    fn from_name_inverts_name() {
        for v in Variant::ALL {
            assert_eq!(Variant::from_name(v.name()), Some(v));
        }
        assert_eq!(Variant::from_name("NOPE"), None);
    }
}
