//! User programs, page-table construction, and the program loader.
//!
//! The loader plays the role of the untrusted OS's `execve`: it allocates
//! physical pages *sequentially* from a per-core base (mirroring the
//! paper's observation in Section 7.2 that a freshly booted Linux
//! allocates pages sequentially — which is exactly what makes PART's index
//! change hurt), builds a three-level page table, copies the program
//! image, and maps the kernel's own pages as supervisor-only so traps can
//! be handled without switching address spaces.

use mi6_isa::{PageTableEntry, PhysAddr, VirtAddr, PAGE_SIZE};
use mi6_mem::PhysMem;
use std::fmt;

/// Virtual address of the first code page.
pub const CODE_VA: u64 = 0x0001_0000;
/// Virtual address of the data/heap segment.
pub const DATA_VA: u64 = 0x1000_0000;
/// Top of the user stack.
pub const STACK_TOP_VA: u64 = 0x7000_0000;

/// A relocatable user program produced by the workload generators.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Human-readable name (benchmark name in the harness output).
    pub name: String,
    /// Code words, placed at [`CODE_VA`]. Entry is the first word.
    pub code: Vec<u32>,
    /// Size of the zero-initialised data/heap segment at [`DATA_VA`].
    pub data_size: u64,
    /// Initialisers applied to the data segment: (byte offset, value).
    pub data_init: Vec<(u64, u64)>,
    /// Stack bytes reserved below [`STACK_TOP_VA`].
    pub stack_size: u64,
}

impl Program {
    /// The entry point virtual address.
    pub fn entry_va(&self) -> u64 {
        CODE_VA
    }

    /// Initial stack pointer (16-byte aligned, below the stack top).
    pub fn initial_sp(&self) -> u64 {
        STACK_TOP_VA - 16
    }
}

/// Error produced by the loader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The program image or data segment exceeds the per-core physical
    /// allocation window.
    OutOfPhysicalMemory,
    /// The page-table region is exhausted.
    OutOfTablePages,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LoadError::OutOfPhysicalMemory => "out of physical memory for user pages",
            LoadError::OutOfTablePages => "out of page-table pages",
        })
    }
}

impl std::error::Error for LoadError {}

/// A three-level page-table under construction in physical memory.
#[derive(Debug)]
pub struct AddressSpace {
    root: u64,
    next_table: u64,
    table_limit: u64,
}

impl AddressSpace {
    /// Creates an address space whose table pages are carved from
    /// `[table_base, table_base + table_bytes)`.
    pub fn new(mem: &mut PhysMem, table_base: u64, table_bytes: u64) -> AddressSpace {
        assert_eq!(table_base % PAGE_SIZE, 0);
        // Zero the root page (PhysMem is zero-initialised, but the region
        // may be reused across loads).
        mem.scrub(PhysAddr::new(table_base), PAGE_SIZE);
        AddressSpace {
            root: table_base,
            next_table: table_base + PAGE_SIZE,
            table_limit: table_base + table_bytes,
        }
    }

    /// The `satp` value activating this address space.
    pub fn satp(&self) -> u64 {
        self.root >> 12
    }

    /// Wraps an existing table (from a `satp` value) for read-only walks
    /// with [`AddressSpace::translate`].
    pub fn probe(satp: u64) -> AddressSpace {
        AddressSpace {
            root: satp << 12,
            next_table: 0,
            table_limit: 0,
        }
    }

    fn alloc_table(&mut self, mem: &mut PhysMem) -> Result<u64, LoadError> {
        if self.next_table >= self.table_limit {
            return Err(LoadError::OutOfTablePages);
        }
        let page = self.next_table;
        self.next_table += PAGE_SIZE;
        mem.scrub(PhysAddr::new(page), PAGE_SIZE);
        Ok(page)
    }

    /// Maps one 4 KiB page `va -> pa` with the given permissions.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::OutOfTablePages`] when the table region is
    /// exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the mapping already exists (double map) or addresses are
    /// unaligned.
    #[allow(clippy::too_many_arguments)] // mirrors the PTE flag set
    pub fn map_page(
        &mut self,
        mem: &mut PhysMem,
        va: u64,
        pa: u64,
        r: bool,
        w: bool,
        x: bool,
        user: bool,
    ) -> Result<(), LoadError> {
        assert_eq!(va % PAGE_SIZE, 0, "unaligned va");
        assert_eq!(pa % PAGE_SIZE, 0, "unaligned pa");
        let v = VirtAddr::new(va);
        let mut table = self.root;
        for level in (1..mi6_isa::paging::LEVELS).rev() {
            let slot = table + v.vpn(level) * 8;
            let pte = PageTableEntry(mem.read_u64(PhysAddr::new(slot)));
            let next = if pte.valid() {
                assert!(!pte.is_leaf(), "superpage in the way of a 4K mapping");
                pte.ppn() << 12
            } else {
                let page = self.alloc_table(mem)?;
                mem.write_u64(PhysAddr::new(slot), PageTableEntry::table(page >> 12).raw());
                page
            };
            table = next;
        }
        let slot = table + v.vpn(0) * 8;
        let old = PageTableEntry(mem.read_u64(PhysAddr::new(slot)));
        assert!(!old.valid(), "double mapping of {va:#x}");
        mem.write_u64(
            PhysAddr::new(slot),
            PageTableEntry::leaf(pa >> 12, r, w, x, user).raw(),
        );
        Ok(())
    }

    /// Translates a virtual address by software walk (test/loader aid).
    pub fn translate(&self, mem: &PhysMem, va: u64) -> Option<u64> {
        let v = VirtAddr::new(va);
        let mut table = self.root;
        for level in (0..mi6_isa::paging::LEVELS).rev() {
            let slot = table + v.vpn(level) * 8;
            let pte = PageTableEntry(mem.read_u64(PhysAddr::new(slot)));
            if !pte.valid() {
                return None;
            }
            if pte.is_leaf() {
                let span = mi6_isa::paging::leaf_span(level);
                let base = (pte.ppn() << 12) & !(span - 1);
                return Some(base | (va & (span - 1)));
            }
            table = pte.ppn() << 12;
        }
        None
    }
}

/// A sequential physical page allocator (the toy OS's page frame
/// allocator — deliberately sequential, see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct FrameAllocator {
    next: u64,
    limit: u64,
}

impl FrameAllocator {
    /// Allocates frames from `[base, base + bytes)`.
    pub fn new(base: u64, bytes: u64) -> FrameAllocator {
        assert_eq!(base % PAGE_SIZE, 0);
        FrameAllocator {
            next: base,
            limit: base + bytes,
        }
    }

    /// Allocates the next frame.
    pub fn alloc(&mut self) -> Result<u64, LoadError> {
        if self.next >= self.limit {
            return Err(LoadError::OutOfPhysicalMemory);
        }
        let page = self.next;
        self.next += PAGE_SIZE;
        Ok(page)
    }

    /// Frames handed out so far.
    pub fn allocated_bytes(&self, base: u64) -> u64 {
        self.next - base
    }

    /// The next frame that would be returned (exclusive high-water mark).
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

/// The result of loading a program: everything the machine needs to start
/// the user process.
#[derive(Clone, Copy, Debug)]
pub struct UserImage {
    /// Page-table root for `satp`.
    pub satp: u64,
    /// Entry point (virtual).
    pub entry: u64,
    /// Initial stack pointer (virtual).
    pub sp: u64,
    /// First physical frame used for user pages.
    pub phys_base: u64,
    /// One past the last physical frame used.
    pub phys_end: u64,
}

/// Loads `program` into `mem`, building its page table.
///
/// `kernel_pages` is a list of `(pa, writable)` pages to identity-map as
/// supervisor pages (kernel text and per-core data), so the trap handler
/// runs without an address-space switch.
///
/// # Errors
///
/// Returns [`LoadError`] when the physical windows are exhausted.
pub fn load_program(
    mem: &mut PhysMem,
    program: &Program,
    table_base: u64,
    table_bytes: u64,
    frames: &mut FrameAllocator,
    kernel_pages: &[(u64, bool)],
) -> Result<UserImage, LoadError> {
    let mut aspace = AddressSpace::new(mem, table_base, table_bytes);
    let phys_base = frames.high_water();
    // Kernel pages: identity, supervisor.
    for &(pa, writable) in kernel_pages {
        aspace.map_page(mem, pa, pa, true, writable, !writable, false)?;
    }
    // Code.
    let code_bytes = (program.code.len() as u64) * 4;
    let code_pages = code_bytes.div_ceil(PAGE_SIZE);
    for i in 0..code_pages {
        let pa = frames.alloc()?;
        aspace.map_page(mem, CODE_VA + i * PAGE_SIZE, pa, true, false, true, true)?;
        // Copy this page's worth of code.
        let start = (i * PAGE_SIZE / 4) as usize;
        let end = program.code.len().min(start + (PAGE_SIZE / 4) as usize);
        mem.load_words(PhysAddr::new(pa), &program.code[start..end]);
    }
    // Data.
    let data_pages = program.data_size.div_ceil(PAGE_SIZE);
    let mut data_phys = Vec::with_capacity(data_pages as usize);
    for i in 0..data_pages {
        let pa = frames.alloc()?;
        data_phys.push(pa);
        aspace.map_page(mem, DATA_VA + i * PAGE_SIZE, pa, true, true, false, true)?;
    }
    for &(off, value) in &program.data_init {
        debug_assert!(off + 8 <= program.data_size);
        let page = (off / PAGE_SIZE) as usize;
        let pa = data_phys[page] + off % PAGE_SIZE;
        mem.write_u64(PhysAddr::new(pa), value);
    }
    // Stack.
    let stack_pages = program.stack_size.div_ceil(PAGE_SIZE).max(1);
    for i in 0..stack_pages {
        let pa = frames.alloc()?;
        aspace.map_page(
            mem,
            STACK_TOP_VA - (i + 1) * PAGE_SIZE,
            pa,
            true,
            true,
            false,
            true,
        )?;
    }
    Ok(UserImage {
        satp: aspace.satp(),
        entry: program.entry_va(),
        sp: program.initial_sp(),
        phys_base,
        phys_end: frames.high_water(),
    })
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for UserImage {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.satp);
        w.u64(self.entry);
        w.u64(self.sp);
        w.u64(self.phys_base);
        w.u64(self.phys_end);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(UserImage {
            satp: r.u64()?,
            entry: r.u64()?,
            sp: r.u64()?,
            phys_base: r.u64()?,
            phys_end: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMem {
        PhysMem::new(256 << 20)
    }

    #[test]
    fn map_and_translate() {
        let mut m = mem();
        let mut a = AddressSpace::new(&mut m, 0x20_0000, 1 << 20);
        a.map_page(&mut m, 0x1000_0000, 0x40_0000, true, true, false, true)
            .unwrap();
        assert_eq!(a.translate(&m, 0x1000_0123), Some(0x40_0123));
        assert_eq!(a.translate(&m, 0x1000_2000), None);
    }

    #[test]
    #[should_panic(expected = "double mapping")]
    fn double_map_panics() {
        let mut m = mem();
        let mut a = AddressSpace::new(&mut m, 0x20_0000, 1 << 20);
        a.map_page(&mut m, 0x1000, 0x40_0000, true, false, false, true)
            .unwrap();
        a.map_page(&mut m, 0x1000, 0x41_0000, true, false, false, true)
            .unwrap();
    }

    #[test]
    fn table_exhaustion_reported() {
        let mut m = mem();
        // Room for the root only: the first map needs two more tables.
        let mut a = AddressSpace::new(&mut m, 0x20_0000, PAGE_SIZE);
        let err = a
            .map_page(&mut m, 0x1000, 0x40_0000, true, false, false, true)
            .unwrap_err();
        assert_eq!(err, LoadError::OutOfTablePages);
    }

    #[test]
    fn frames_are_sequential() {
        let mut f = FrameAllocator::new(0x100_0000, 4 * PAGE_SIZE);
        assert_eq!(f.alloc().unwrap(), 0x100_0000);
        assert_eq!(f.alloc().unwrap(), 0x100_1000);
        assert_eq!(f.alloc().unwrap(), 0x100_2000);
        assert_eq!(f.alloc().unwrap(), 0x100_3000);
        assert_eq!(f.alloc().unwrap_err(), LoadError::OutOfPhysicalMemory);
    }

    #[test]
    fn load_places_code_and_data() {
        let mut m = mem();
        let program = Program {
            name: "t".into(),
            code: vec![0x11111111; 1030], // > 1 page of code
            data_size: 2 * PAGE_SIZE,
            data_init: vec![(8, 0xabcd), (PAGE_SIZE + 16, 0x1234)],
            stack_size: PAGE_SIZE,
        };
        let mut frames = FrameAllocator::new(0x100_0000, 16 << 20);
        let img = load_program(
            &mut m,
            &program,
            0x20_0000,
            1 << 20,
            &mut frames,
            &[(0x2000, false), (0x8000, true)],
        )
        .unwrap();
        assert_eq!(img.entry, CODE_VA);
        let aspace_probe = AddressSpace {
            root: (img.satp) << 12,
            next_table: 0,
            table_limit: 0,
        };
        // Code virtual page 1 maps to the second sequential frame.
        let pa = aspace_probe.translate(&m, CODE_VA + PAGE_SIZE).unwrap();
        assert_eq!(pa, 0x100_1000);
        assert_eq!(m.read_u32(PhysAddr::new(pa)), 0x11111111);
        // Data initialisers landed.
        let dpa = aspace_probe.translate(&m, DATA_VA + 8).unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(dpa)), 0xabcd);
        let dpa2 = aspace_probe
            .translate(&m, DATA_VA + PAGE_SIZE + 16)
            .unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(dpa2)), 0x1234);
        // Kernel pages are supervisor-mapped.
        assert_eq!(aspace_probe.translate(&m, 0x2000), Some(0x2000));
        // Stack mapped below the top.
        assert!(aspace_probe
            .translate(&m, STACK_TOP_VA - PAGE_SIZE)
            .is_some());
        assert!(img.phys_end > img.phys_base);
    }
}
