//! The assembled machine: cores + memory hierarchy + toy OS.
//!
//! [`Machine`] is the top-level simulation object the examples, the
//! experiment harness, and the security tests drive. It instantiates one
//! of the evaluation [`Variant`]s, installs the machine-mode stub and the
//! supervisor kernel, loads user programs behind per-core page tables,
//! and ticks cores and memory in lock step until the programs exit.

use crate::kernel::{self, kdata_base, KERNEL_BASE, M_STUB_BASE};
use crate::loader::{self, FrameAllocator, LoadError, Program, UserImage};
use crate::variant::Variant;
use mi6_core::{Core, CoreStats, CpiCategory, CpiStack};
use mi6_isa::csr;
use mi6_isa::{Exception, Interrupt, PhysAddr, PrivLevel};
use mi6_mem::{L1Stats, LlcStats, MemSystem, Port, RegionBitvec, RegionId};
use std::fmt;

/// Machine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Which evaluation variant to build.
    pub variant: Variant,
    /// Number of cores.
    pub cores: usize,
    /// Cycles between supervisor timer interrupts (0 disables the timer).
    pub timer_interval: u64,
}

impl MachineConfig {
    /// A machine of `cores` cores for one variant, with the default
    /// 250k-cycle scheduler tick (calibrated so FLUSH's stall fraction
    /// lands near the paper's 0.4 % average, Figure 6).
    pub fn variant(variant: Variant, cores: usize) -> MachineConfig {
        MachineConfig {
            variant,
            cores,
            timer_interval: 250_000,
        }
    }

    /// Disables timer interrupts (purely syscall-driven runs).
    pub fn without_timer(mut self) -> MachineConfig {
        self.timer_interval = 0;
        self
    }

    /// Overrides the timer interval.
    pub fn with_timer_interval(mut self, interval: u64) -> MachineConfig {
        self.timer_interval = interval;
        self
    }
}

/// Error from [`Machine::run_to_completion`].
///
/// Both variants carry the statistics accumulated up to the kill point,
/// so a cancelled or timed-out run is not a total loss: grid journals can
/// record how far the point got (cycles, committed instructions, the CPI
/// stack) before it was stopped.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The cycle cap was reached before all cores halted.
    Timeout {
        /// Cycles executed.
        cycles: u64,
        /// Statistics at the moment the cap was hit.
        partial: Box<MachineStats>,
    },
    /// The cancel flag ([`crate::SimBuilder::cancel_flag`]) was raised
    /// mid-run.
    Cancelled {
        /// Machine cycle at which the cancellation was observed.
        at_cycle: u64,
        /// Statistics at the moment the cancellation was observed.
        partial: Box<MachineStats>,
    },
}

impl RunError {
    /// The partial statistics captured when the run was stopped.
    pub fn partial(&self) -> &MachineStats {
        match self {
            RunError::Timeout { partial, .. } | RunError::Cancelled { partial, .. } => partial,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Timeout { cycles, .. } => {
                write!(f, "machine did not halt within {cycles} cycles")
            }
            RunError::Cancelled { at_cycle, .. } => {
                write!(f, "run cancelled at cycle {at_cycle}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Outcome of one [`Machine::step_slice`] call.
///
/// The first three variants are terminal for the run; the last two mean
/// the machine is resumable — call `step_slice` again to continue.
#[derive(Clone, Debug)]
pub enum SliceOutcome {
    /// Every core halted; the run is complete.
    Completed(MachineStats),
    /// The run deadline set by [`Machine::begin_run`] was reached before
    /// all cores halted (the slice-level analogue of
    /// [`RunError::Timeout`]).
    TimedOut {
        /// Machine cycle at which the deadline was observed.
        at_cycle: u64,
    },
    /// The cancel flag was observed raised at a poll boundary.
    Cancelled {
        /// Machine cycle at which the cancellation was observed.
        at_cycle: u64,
    },
    /// The slice's cycle budget ran out while the machine was still busy.
    /// Resume with any budget; work continues at `at_cycle`.
    BudgetExhausted {
        /// Machine cycle the slice stopped at (`now()`).
        at_cycle: u64,
    },
    /// The machine is provably inert until `until_cycle` and the jump
    /// there would overshoot this slice's budget. The clock was *not*
    /// advanced: the caller should park the machine and resume it with a
    /// budget of at least `until_cycle - now()` so the skip happens as
    /// one jump, exactly as an unsliced run would perform it.
    /// `until_cycle == u64::MAX` means inert pending external input.
    Blocked {
        /// First future cycle at which any component could do work
        /// (already capped to the run deadline and any checkpoint or
        /// metrics-sampling boundary).
        until_cycle: u64,
    },
}

/// Aggregated statistics after a run.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Cycles this process actually ticked (a runtime counter, not part
    /// of snapshots: a restored machine restarts it at zero). The rest
    /// of `cycles` was fast-forwarded by the idle skip — or, after a
    /// restore, inherited from the snapshot's warm prefix.
    pub cycles_ticked: u64,
    /// Per-core pipeline counters.
    pub core: Vec<CoreStats>,
    /// Per-core CPI stacks (commit-slot attribution plus structural
    /// pressure counters). Runtime-only like `cycles_ticked`: a restored
    /// machine restarts the stack at zero, and each stack's own `cycles`
    /// counter covers exactly the slots it accounted.
    pub cpi: Vec<CpiStack>,
    /// Per-core L1 instruction cache counters.
    pub l1i: Vec<L1Stats>,
    /// Per-core L1 data cache counters.
    pub l1d: Vec<L1Stats>,
    /// Shared LLC counters.
    pub llc: LlcStats,
    /// DRAM (reads, writes, backpressure events).
    pub dram: (u64, u64, u64),
}

impl MachineStats {
    /// LLC misses per thousand committed instructions on core 0
    /// (the Figure 9 metric).
    pub fn llc_mpki(&self) -> f64 {
        let inst = self
            .core
            .first()
            .map(|c| c.committed_instructions)
            .unwrap_or(0);
        if inst == 0 {
            return 0.0;
        }
        self.llc.misses as f64 * 1000.0 / inst as f64
    }

    /// Branch MPKI on core 0 (the Figure 7 metric).
    pub fn branch_mpki(&self) -> f64 {
        self.core
            .first()
            .map(|c| c.mispredicts_per_kinst())
            .unwrap_or(0.0)
    }
}

/// Per-core spacing of the physical windows handed to user programs.
///
/// The stride is 17 DRAM regions (17 × 32 MiB), *not* a power of two:
/// PART's set partitioning keys on the low `region_bits` of the region
/// ID, so a 16-region stride would land every core's window in the same
/// LLC partition and multi-core runs would get no cross-core set
/// isolation at all. A 17-region stride walks core `c` to region `17c`,
/// spreading cores across partitions exactly as the monitor's region
/// allocator would.
const USER_PHYS_BASE: u64 = 0x0100_0000; // 16 MiB
const USER_PHYS_STRIDE: u64 = 17 * 0x0200_0000; // 544 MiB per core
const TABLE_BASE: u64 = 0x0020_0000; // 2 MiB
const TABLE_STRIDE: u64 = 0x0010_0000; // 1 MiB of tables per core

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<Core>,
    mem: MemSystem,
    now: u64,
    /// Real `tick()` calls executed (runtime-only, never snapshotted):
    /// `now - ticks` is the number of fast-forwarded cycles, which tests
    /// use to prove the idle-skip actually engaged.
    ticks: u64,
    loaded: Vec<Option<UserImage>>,
    /// Cycles between automatic checkpoints (0 = off; builder knob).
    ckpt_every: u64,
    /// Directory automatic checkpoints are written to (default `.`).
    ckpt_dir: Option<std::path::PathBuf>,
    /// Cooperative cancellation flag, polled by [`Machine::run_to_completion`]
    /// every [`CANCEL_POLL_MASK`]+1 cycles (builder knob; runtime-only,
    /// never snapshotted).
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Observability session (builder knobs; runtime-only, never
    /// snapshotted — enabling it cannot change snapshot bytes).
    obs: Option<Box<ObsState>>,
    /// Absolute cycle the current run times out at, set by
    /// [`Machine::begin_run`] (runtime-only, never snapshotted).
    deadline: u64,
    /// Next cycle the idle-skip inertness probe is allowed to run
    /// (runtime-only). Lives on the machine rather than the run loop so
    /// the tick/skip decision sequence — and therefore `ticks` — is
    /// independent of where slice boundaries fall.
    probe_at: u64,
    /// Current exponential probe backoff (runtime-only; see `probe_at`).
    probe_backoff: u64,
}

/// Trace and metrics outputs attached to a machine. All measurement-only:
/// the per-core [`mi6_obs::Tracer`]s live on the cores and buffer
/// O3PipeView lines which [`Machine::tick`] drains into `trace`; the
/// metrics sampler reads occupancy/flow probes every
/// [`MetricsState::every`] cycles.
#[derive(Debug)]
struct ObsState {
    /// Konata/O3PipeView trace output (tracing enabled iff `Some`).
    trace: Option<std::io::BufWriter<std::fs::File>>,
    /// Metrics sampler (sampling enabled iff `Some`).
    metrics: Option<MetricsState>,
    /// Reusable buffer for per-core MSHR occupancy sampling.
    scratch: Vec<u64>,
}

/// The time-series metrics half of an observability session.
#[derive(Debug)]
struct MetricsState {
    sink: mi6_obs::MetricsSink,
    out: std::io::BufWriter<std::fs::File>,
    /// Sampling period in cycles (always > 0).
    every: u64,
}

/// Tracer line buffers are drained to the file once they exceed this many
/// bytes (and unconditionally by [`Machine::flush_observability`]).
const TRACE_DRAIN_BYTES: usize = 64 * 1024;

/// `run_to_completion` polls the cancel flag whenever
/// `now & CANCEL_POLL_MASK == 0`: every 4096 cycles, frequent enough that
/// a cancelled grid point stops within microseconds of host time, rare
/// enough to stay invisible in the simulation hot loop.
const CANCEL_POLL_MASK: u64 = 0xFFF;

impl Machine {
    /// Assembles a machine from fully resolved component configurations
    /// (the [`crate::SimBuilder`] backend: variant defaults plus any
    /// overrides have already been folded into the explicit configs).
    pub(crate) fn assemble(
        cfg: MachineConfig,
        core_cfg: mi6_core::CoreConfig,
        sec_cfg: mi6_core::SecurityConfig,
        mem_cfg: mi6_mem::MemConfig,
    ) -> Machine {
        assert!(cfg.cores >= 1);
        let mut mem = MemSystem::new(mem_cfg, cfg.cores);
        mem.phys
            .load_words(PhysAddr::new(M_STUB_BASE), &kernel::build_m_stub());
        let interval = if cfg.timer_interval == 0 {
            u64::MAX / 2
        } else {
            cfg.timer_interval
        };
        mem.phys
            .load_words(PhysAddr::new(KERNEL_BASE), &kernel::build_kernel(interval));
        let cores = (0..cfg.cores)
            .map(|i| Core::new(i, core_cfg, sec_cfg))
            .collect();
        Machine {
            cfg,
            cores,
            mem,
            now: 0,
            ticks: 0,
            loaded: vec![None; cfg.cores],
            ckpt_every: 0,
            ckpt_dir: None,
            cancel: None,
            obs: None,
            deadline: u64::MAX,
            probe_at: 0,
            probe_backoff: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Real `tick()` calls executed so far (runtime-only; not restored by
    /// snapshots). `now() - ticks()` cycles were fast-forwarded by the
    /// event-driven idle-skip.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Access to a core (e.g. for CSR inspection in tests).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Mutable access to a core.
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Access to the memory system.
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Mutable access to the memory system.
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// The physical window `[base, limit)` used for core `i`'s user pages.
    pub fn user_phys_window(core: usize) -> (u64, u64) {
        let base = USER_PHYS_BASE + core as u64 * USER_PHYS_STRIDE;
        (base, base + USER_PHYS_STRIDE - USER_PHYS_BASE)
    }

    /// Loads a user program onto core `i` (the toy OS's `execve`) and
    /// points the core at its entry in user mode.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if the program exceeds the core's physical
    /// window or page-table space.
    pub fn load_user_program(&mut self, i: usize, program: &Program) -> Result<(), LoadError> {
        let (phys_base, phys_limit) = Machine::user_phys_window(i);
        let mut frames = FrameAllocator::new(phys_base, phys_limit - phys_base);
        let image = loader::load_program(
            &mut self.mem.phys,
            program,
            TABLE_BASE + i as u64 * TABLE_STRIDE,
            TABLE_STRIDE,
            &mut frames,
            &kernel::kernel_pages(self.cfg.cores),
        )?;
        let interval = self.cfg.timer_interval;
        let core = &mut self.cores[i];
        core.csrs = mi6_isa::csr::CsrFile::new();
        core.csrs.satp = image.satp;
        core.csrs.stvec = KERNEL_BASE;
        core.csrs.mtvec = M_STUB_BASE;
        core.csrs.sscratch = kdata_base(i);
        // Delegate user-visible traps and the supervisor timer to S-mode.
        core.csrs.medeleg = (1 << Exception::EcallFromUser.code())
            | (1 << Exception::Breakpoint.code())
            | (1 << Exception::InstPageFault.code())
            | (1 << Exception::LoadPageFault.code())
            | (1 << Exception::StorePageFault.code())
            | (1 << Exception::LoadMisaligned.code())
            | (1 << Exception::StoreMisaligned.code())
            | (1 << Exception::InstMisaligned.code());
        core.csrs.mideleg = 1 << Interrupt::SupervisorTimer.code();
        core.csrs.mie = 1 << Interrupt::SupervisorTimer.code();
        core.csrs.stimecmp = if interval == 0 {
            u64::MAX
        } else {
            self.now + interval
        };
        // MI6 hardware state: region bitvector and monitor fetch window.
        Machine::install_security_csrs(core, &self.mem, phys_base, &image);
        core.regs = [0; 32];
        core.regs[mi6_isa::Reg::SP.index() as usize] = image.sp;
        core.halted = false;
        core.reset_to(image.entry, PrivLevel::User);
        self.loaded[i] = Some(image);
        Ok(())
    }

    /// Programs the MI6 security CSRs of one core for a loaded image:
    /// the DRAM-region bitvector covering the kernel (region 0) plus the
    /// image's physical range, and the monitor fetch window. No-ops for
    /// toggles the core's security configuration leaves off. Called at
    /// program load and again after a cross-variant restore (the
    /// snapshot's CSRs reflect the *source* variant's toggles — e.g. a
    /// BASE warm-up leaves `mregions` fully permissive, which would
    /// silently disable a forked MI6 machine's region checks).
    fn install_security_csrs(core: &mut Core, mem: &MemSystem, phys_base: u64, image: &UserImage) {
        if core.security().region_checks {
            let map = mem.region_map();
            let mut bv = RegionBitvec::none();
            // Kernel + tables live below USER_PHYS_BASE: region 0.
            bv.allow(RegionId(0));
            let mut pa = phys_base;
            while pa < image.phys_end.max(phys_base + 1) {
                bv.allow(map.region_of(PhysAddr::new(pa)));
                pa += map.region_bytes();
            }
            bv.allow(map.region_of(PhysAddr::new(image.phys_end.saturating_sub(1))));
            core.csrs.mregions = bv.0;
        }
        if core.security().machine_mode_guard {
            core.csrs.mfetchbase = M_STUB_BASE;
            core.csrs.mfetchbound = KERNEL_BASE; // the stub only
        }
    }

    /// The image loaded on core `i`, if any.
    pub fn image(&self, i: usize) -> Option<&UserImage> {
        self.loaded[i].as_ref()
    }

    /// Advances the whole machine one cycle.
    pub fn tick(&mut self) {
        for core in &mut self.cores {
            core.tick(self.now, &mut self.mem);
        }
        self.mem.tick(self.now);
        self.now += 1;
        self.ticks += 1;
        if self.obs.is_some() {
            self.obs_after_tick();
        }
        if self.ckpt_every != 0 && self.now.is_multiple_of(self.ckpt_every) {
            self.write_auto_checkpoint();
        }
    }

    /// Post-tick observability work: drain tracer buffers that grew past
    /// the drain threshold and take a metrics sample when a sampling
    /// boundary was crossed. Off the hot path — [`Machine::tick`] only
    /// enters when an observability session exists.
    fn obs_after_tick(&mut self) {
        self.drain_traces(false);
        if self
            .metrics_every()
            .is_some_and(|every| self.now.is_multiple_of(every))
        {
            self.sample_metrics();
        }
    }

    /// The metrics sampling period, when sampling is on.
    fn metrics_every(&self) -> Option<u64> {
        Some(self.obs.as_ref()?.metrics.as_ref()?.every)
    }

    /// Appends buffered tracer lines to the trace file. Unless `force`,
    /// only buffers past [`TRACE_DRAIN_BYTES`] are drained, so the
    /// per-cycle cost is a length check per core.
    fn drain_traces(&mut self, force: bool) {
        use std::io::Write;
        let Some(obs) = self.obs.as_deref_mut() else {
            return;
        };
        let Some(out) = &mut obs.trace else {
            return;
        };
        for core in &mut self.cores {
            if let Some(t) = core.tracer.as_deref_mut() {
                if t.pending() > 0 && (force || t.pending() >= TRACE_DRAIN_BYTES) {
                    out.write_all(t.take().as_bytes()).expect("trace write");
                }
            }
        }
    }

    /// Takes one metrics sample at the current cycle and appends the rows
    /// to the metrics file.
    fn sample_metrics(&mut self) {
        let Some(mut obs) = self.obs.take() else {
            return;
        };
        if let Some(m) = obs.metrics.as_mut() {
            self.sample_into(m, &mut obs.scratch);
        }
        self.obs = Some(obs);
    }

    /// Writes one sample into the sink: per-core pipeline occupancy and
    /// stall/flow counters, LLC MSHR occupancy vs quota, queue depths,
    /// arbiter grants/denials, DRAM totals and per-region activity, and
    /// the ticked/fast-forwarded cycle split.
    fn sample_into(&self, m: &mut MetricsState, scratch: &mut Vec<u64>) {
        use std::io::Write;
        let cycle = self.now;
        let sink = &mut m.sink;
        for (i, core) in self.cores.iter().enumerate() {
            let (rob, iq, lq, sq, sb) = core.occupancy();
            let c = Some(i);
            sink.gauge(cycle, c, "rob_occupancy", rob as u64);
            sink.gauge(cycle, c, "iq_occupancy", iq as u64);
            sink.gauge(cycle, c, "lq_occupancy", lq as u64);
            sink.gauge(cycle, c, "sq_occupancy", sq as u64);
            sink.gauge(cycle, c, "sb_occupancy", sb as u64);
            sink.counter(cycle, c, "committed", core.stats.committed_instructions);
            sink.counter(cycle, c, "stall_rob_full", core.cpi.rename_rob_full);
            sink.counter(cycle, c, "stall_iq_full", core.cpi.rename_iq_full);
            sink.counter(cycle, c, "stall_lq_full", core.cpi.rename_lq_full);
            sink.counter(cycle, c, "stall_sq_full", core.cpi.rename_sq_full);
            sink.counter(cycle, c, "stall_sb_full", core.cpi.commit_sb_full);
            // CPI-stack slot counters: the sink emits deltas, so each
            // sample window carries its own slot attribution.
            for cat in CpiCategory::ALL {
                sink.counter(cycle, c, cat.metric_name(), core.cpi.get(cat));
            }
        }
        // LLC MSHR occupancy vs the per-core quota.
        self.mem.mshr_occupancy(scratch);
        for (i, &occ) in scratch.iter().enumerate() {
            sink.gauge(cycle, Some(i), "mshr_occupancy", occ);
        }
        sink.gauge(cycle, None, "mshr_quota", self.mem.mshr_quota_per_core());
        // Queue depths: LLC internals plus each core's request link.
        let (pipe, dq, uq) = self.mem.llc_queue_depths();
        sink.gauge(cycle, None, "llc_pipe_depth", pipe as u64);
        sink.gauge(cycle, None, "llc_dq_depth", dq as u64);
        sink.gauge(cycle, None, "llc_uq_depth", uq as u64);
        for i in 0..self.cfg.cores {
            let (up_req, _, _) = self.mem.link_depths(i);
            sink.gauge(cycle, Some(i), "link_up_req_depth", up_req as u64);
        }
        // Arbiter flow and per-region DRAM activity (the region index
        // rides in the `core` field; the metric name disambiguates).
        if let Some(mo) = self.mem.obs() {
            for (i, (&g, &d)) in mo.arb_grants.iter().zip(&mo.arb_denials).enumerate() {
                sink.counter(cycle, Some(i), "arb_grants", g);
                sink.counter(cycle, Some(i), "arb_denials", d);
            }
            for (r, &reads) in mo.dram_region_reads.iter().enumerate() {
                if reads > 0 {
                    sink.counter(cycle, Some(r), "dram_region_reads", reads);
                }
            }
            for (r, &writes) in mo.dram_region_writes.iter().enumerate() {
                if writes > 0 {
                    sink.counter(cycle, Some(r), "dram_region_writes", writes);
                }
            }
        }
        let (reads, writes, _) = self.mem.dram_stats();
        sink.gauge(
            cycle,
            None,
            "dram_inflight",
            self.mem.dram_inflight() as u64,
        );
        sink.counter(cycle, None, "dram_reads", reads);
        sink.counter(cycle, None, "dram_writes", writes);
        // Ticked vs fast-forwarded cycles: idle-skip spans show up as
        // windows where `cycles_skipped` dominates.
        sink.counter(cycle, None, "cycles_ticked", self.ticks);
        sink.counter(cycle, None, "cycles_skipped", self.now - self.ticks);
        let rows = m.sink.take();
        m.out.write_all(rows.as_bytes()).expect("metrics write");
    }

    /// Drains every tracer buffer and pending metrics rows to their files
    /// and flushes both. Called automatically at the end of
    /// [`Machine::run_to_completion`]; callers driving
    /// [`Machine::tick`]/[`Machine::run_cycles`] directly should call it
    /// when done.
    pub fn flush_observability(&mut self) {
        use std::io::Write;
        self.drain_traces(true);
        let Some(obs) = self.obs.as_deref_mut() else {
            return;
        };
        if let Some(out) = &mut obs.trace {
            out.flush().expect("trace flush");
        }
        if let Some(m) = &mut obs.metrics {
            let rows = m.sink.take();
            m.out.write_all(rows.as_bytes()).expect("metrics write");
            m.out.flush().expect("metrics flush");
        }
    }

    /// Runs for `cycles` cycles (or until every core halts).
    pub fn run_cycles(&mut self, cycles: u64) {
        let end = self.now + cycles;
        while self.now < end && !self.all_halted() {
            self.tick();
        }
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted)
    }

    /// Runs until every core halts.
    ///
    /// A thin loop over [`Machine::begin_run`] and
    /// [`Machine::step_slice`] with an unbounded slice budget — the
    /// sliced path *is* the one-shot path.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Timeout`] if the machine has not halted after
    /// `max_cycles`; both error variants carry the partial statistics at
    /// the kill point.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> Result<MachineStats, RunError> {
        self.begin_run(max_cycles);
        loop {
            match self.step_slice(u64::MAX) {
                SliceOutcome::Completed(stats) => return Ok(stats),
                SliceOutcome::TimedOut { .. } => {
                    return Err(RunError::Timeout {
                        cycles: max_cycles,
                        partial: Box::new(self.stats()),
                    });
                }
                SliceOutcome::Cancelled { at_cycle } => {
                    return Err(RunError::Cancelled {
                        at_cycle,
                        partial: Box::new(self.stats()),
                    });
                }
                // Unreachable with an unbounded budget (`Blocked` only
                // fires when a skip would overshoot the slice), but
                // harmless: just keep stepping.
                SliceOutcome::BudgetExhausted { .. } | SliceOutcome::Blocked { .. } => {}
            }
        }
    }

    /// Arms a run: the machine will time out `max_cycles` from now, and
    /// the idle-skip probe state is reset exactly as a fresh
    /// `run_to_completion` call would. Call once before a `step_slice`
    /// sequence; `run_to_completion` calls it for you.
    pub fn begin_run(&mut self, max_cycles: u64) {
        self.deadline = self.now.saturating_add(max_cycles);
        self.probe_at = self.now;
        self.probe_backoff = 0;
    }

    /// Advances the machine by at most `budget` cycles of simulated time
    /// and reports why it stopped.
    ///
    /// This is the run loop, made resumable: calling it repeatedly with
    /// any positive budgets performs the *identical* sequence of ticks
    /// and idle-skip jumps as one call with an unbounded budget, so
    /// sliced runs are bit-exact with one-shot runs (same `ticks()`,
    /// same stats, same snapshot bytes, same checkpoint files). Three
    /// things make that hold:
    ///
    /// - the probe/backoff state persists on the machine across slices,
    ///   so slice boundaries cannot reset the probe cadence;
    /// - an idle-skip jump is never split: a skip whose (checkpoint- and
    ///   metrics-capped) target overshoots the slice returns
    ///   [`SliceOutcome::Blocked`] *without advancing the clock*, and the
    ///   resumed slice performs the whole jump;
    /// - the cancel poll keys on `now & CANCEL_POLL_MASK`, which is a
    ///   function of simulated time only (re-entering a slice at an
    ///   already-polled cycle re-reads the flag, which has no simulated
    ///   effect).
    ///
    /// Terminal outcomes (`Completed` / `TimedOut` / `Cancelled`) flush
    /// observability sinks; resumable ones do not.
    pub fn step_slice(&mut self, budget: u64) -> SliceOutcome {
        // Event-driven idle-skip: when every core is provably stalled on
        // known-time events (DRAM returns, link FIFO arrivals, pipeline
        // exits, the timer), jump the clock straight to the next event
        // instead of ticking empty stages. Under auto-checkpointing the
        // skip is capped at the next `ckpt_every` boundary, and a landing
        // exactly on one writes the checkpoint there — byte-identical to a
        // tick-every-cycle run, because [`Core::note_skipped_cycles`]
        // settles the one per-cycle register (`csrs.cycle`) a real tick
        // would have written.
        //
        // The inertness proof itself walks every core's in-flight state,
        // which is pure overhead while the machine is busy — so failed
        // probes back off exponentially (capped). This only delays when a
        // skip *starts*, never whether one is sound, so it cannot change
        // simulated timing: detection lags an inert window by at most
        // 2x the preceding busy stretch (classic doubling argument),
        // which keeps long DRAM-miss windows almost fully skipped while
        // busy phases pay ~1/64th of the probe cost.
        let slice_end = self.now.saturating_add(budget.max(1));
        while !self.all_halted() {
            if self.now >= self.deadline {
                self.flush_observability();
                return SliceOutcome::TimedOut { at_cycle: self.now };
            }
            if self.now & CANCEL_POLL_MASK == 0 {
                if let Some(cancel) = &self.cancel {
                    if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                        self.flush_observability();
                        return SliceOutcome::Cancelled { at_cycle: self.now };
                    }
                }
            }
            if self.now >= slice_end {
                return SliceOutcome::BudgetExhausted { at_cycle: self.now };
            }
            if self.now >= self.probe_at {
                if let Some(next) = self.next_event_cycle() {
                    let mut target = next.min(self.deadline);
                    if let Some(periods) = self.now.checked_div(self.ckpt_every) {
                        // Never skip past a checkpoint boundary; a landing
                        // exactly on one writes the checkpoint below.
                        target = target.min((periods + 1) * self.ckpt_every);
                    }
                    if let Some(every) = self.metrics_every() {
                        // Likewise never skip past a sampling boundary, so
                        // idle windows still produce their samples (with
                        // `cycles_skipped` carrying the span).
                        target = target.min((self.now / every + 1) * every);
                    }
                    if target > slice_end || target == u64::MAX {
                        // The jump overshoots this slice (or the machine
                        // is inert forever with no finite deadline).
                        // Don't split it — park and let the resume take
                        // the identical single jump.
                        return SliceOutcome::Blocked {
                            until_cycle: target,
                        };
                    }
                    self.fast_forward(target);
                    if self.ckpt_every != 0 && self.now.is_multiple_of(self.ckpt_every) {
                        self.write_auto_checkpoint();
                    }
                    if self
                        .metrics_every()
                        .is_some_and(|every| self.now.is_multiple_of(every))
                    {
                        self.sample_metrics();
                    }
                    self.probe_backoff = 0;
                    self.probe_at = self.now;
                    continue;
                }
                self.probe_backoff = (self.probe_backoff * 2).clamp(1, 64);
                self.probe_at = self.now + self.probe_backoff;
            }
            self.tick();
        }
        self.flush_observability();
        SliceOutcome::Completed(self.stats())
    }

    /// The earliest future cycle at which any component could do work, or
    /// `None` when some component might act at `self.now` (tick normally).
    /// `Some(u64::MAX)` means the machine is inert without external input
    /// — the caller clamps to its own horizon and times out there.
    fn next_event_cycle(&self) -> Option<u64> {
        let mut next = u64::MAX;
        for core in &self.cores {
            next = next.min(core.next_event(self.now)?);
        }
        next = next.min(self.mem.next_event(self.now)?);
        debug_assert!(next > self.now, "next event must be in the future");
        Some(next)
    }

    /// Fast-forwards the clock to `target` without ticking: every
    /// component has proven itself inert until then, so the only
    /// per-cycle state to account for is the cores' cycle counters.
    fn fast_forward(&mut self, target: u64) {
        debug_assert!(target > self.now);
        let skipped = target - self.now;
        for core in &mut self.cores {
            core.note_skipped_cycles(skipped, target);
        }
        self.now = target;
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            cycles: self.now,
            cycles_ticked: self.ticks,
            core: self.cores.iter().map(|c| c.stats).collect(),
            cpi: self.cores.iter().map(|c| c.cpi.clone()).collect(),
            l1i: (0..self.cfg.cores)
                .map(|i| self.mem.l1_stats(i, Port::IFetch))
                .collect(),
            l1d: (0..self.cfg.cores)
                .map(|i| self.mem.l1_stats(i, Port::Data))
                .collect(),
            llc: self.mem.llc_stats(),
            dram: self.mem.dram_stats(),
        }
    }

    /// Reads a u64 from a user virtual address of core `i`'s address
    /// space (test aid; software page walk).
    pub fn read_user_u64(&self, i: usize, va: u64) -> Option<u64> {
        let image = self.loaded[i].as_ref()?;
        let aspace = crate::loader::AddressSpace::probe(image.satp);
        let pa = aspace.translate(&self.mem.phys, va)?;
        Some(self.mem.phys.read_u64(PhysAddr::new(pa)))
    }

    /// The exit register (`a0`) of core `i` at halt.
    pub fn exit_value(&self, i: usize) -> u64 {
        // a0 is saved in the kernel save area on the final ecall.
        self.mem
            .phys
            .read_u64(PhysAddr::new(kdata_base(i) + 10 * 8))
    }

    /// Number of supervisor-level CSR traps core `i`'s kernel absorbed
    /// (from the core's own counter).
    pub fn traps(&self, i: usize) -> u64 {
        self.cores[i].stats.traps
    }

    /// Internal-use accessor for the monitor crate: the CSR file of core
    /// `i`.
    pub fn csrs_mut(&mut self, i: usize) -> &mut mi6_isa::csr::CsrFile {
        let _ = csr::MSTATUS; // keep the import local and explicit
        &mut self.cores[i].csrs
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{fnv1a64, SnapError, SnapReader, SnapState, SnapWriter, FORMAT_VERSION, MAGIC};

impl Machine {
    /// Configures automatic checkpointing: every `cycles` cycles a
    /// snapshot is written to the checkpoint directory (0 disables).
    pub(crate) fn set_checkpointing(&mut self, every: u64, dir: Option<std::path::PathBuf>) {
        self.ckpt_every = every;
        self.ckpt_dir = dir;
    }

    pub(crate) fn set_cancel_flag(
        &mut self,
        flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) {
        self.cancel = flag;
    }

    /// Attaches an observability session (builder backend): a per-core
    /// O3PipeView tracer feeding `trace` and/or a metrics sampler writing
    /// JSONL to `metrics` every `metrics_every` cycles. No-op when both
    /// paths are `None`; everything installed here is runtime-only.
    pub(crate) fn set_observability(
        &mut self,
        trace: Option<&std::path::Path>,
        trace_limit: u64,
        metrics: Option<&std::path::Path>,
        metrics_every: u64,
    ) -> Result<(), String> {
        if trace.is_none() && metrics.is_none() {
            return Ok(());
        }
        let open = |p: &std::path::Path| {
            std::fs::File::create(p)
                .map(std::io::BufWriter::new)
                .map_err(|e| format!("{}: {e}", p.display()))
        };
        let trace_out = trace.map(open).transpose()?;
        if trace_out.is_some() {
            let cores = self.cfg.cores;
            for (i, core) in self.cores.iter_mut().enumerate() {
                core.tracer = Some(Box::new(mi6_obs::Tracer::new(i, cores, trace_limit)));
            }
        }
        let metrics_out = metrics.map(open).transpose()?;
        let metrics_state = metrics_out.map(|out| {
            self.mem.enable_obs();
            MetricsState {
                sink: mi6_obs::MetricsSink::new(),
                out,
                every: metrics_every.max(1),
            }
        });
        self.obs = Some(Box::new(ObsState {
            trace: trace_out,
            metrics: metrics_state,
            scratch: Vec::new(),
        }));
        Ok(())
    }

    /// The strict configuration fingerprint: variant, core count, timer,
    /// and every core/security/memory knob. A snapshot restores verbatim
    /// only into a machine with the same strict fingerprint.
    pub fn strict_fingerprint(&self) -> u64 {
        let mut w = SnapWriter::new();
        w.u8(self.cfg.variant.index());
        w.u64(self.cfg.cores as u64);
        w.u64(self.cfg.timer_interval);
        self.cores[0].config().save(&mut w);
        self.cores[0].security().save(&mut w);
        self.mem.config().save(&mut w);
        fnv1a64(&w.finish())
    }

    /// The structural fingerprint: everything that determines the *shape*
    /// of the machine's state arrays (core structure, cache geometry,
    /// DRAM, core count, timer) but not the security toggles or LLC
    /// organization. Two variants with equal structural fingerprints can
    /// exchange memory-quiescent snapshots ([`Machine::restore_forked`]).
    pub fn structural_fingerprint(&self) -> u64 {
        let mut w = SnapWriter::new();
        w.u64(self.cfg.cores as u64);
        w.u64(self.cfg.timer_interval);
        self.cores[0].config().save(&mut w);
        let mem = self.mem.config();
        mem.l1i.save(&mut w);
        mem.l1d.save(&mut w);
        w.u64(mem.llc.size_bytes);
        w.u64(mem.llc.ways as u64);
        mem.dram.save(&mut w);
        fnv1a64(&w.finish())
    }

    /// Whether neither the cores nor the hierarchy have memory traffic in
    /// flight. Snapshots taken here can be forked across variants.
    pub fn mem_quiescent(&self) -> bool {
        self.cores.iter().all(Core::mem_quiescent) && self.mem.quiescent()
    }

    /// Ticks until [`Machine::mem_quiescent`] holds (at most `max_cycles`
    /// extra cycles), returning how many cycles were consumed. The
    /// warm-fork runner calls this before snapshotting so the state can be
    /// restored into differently organized LLCs.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::NotQuiescent`] if the machine never settles
    /// within the budget (pathological — quiescent windows occur whenever
    /// the caches absorb the working set for a few dozen cycles).
    pub fn run_until_mem_quiescent(&mut self, max_cycles: u64) -> Result<u64, SnapError> {
        for waited in 0..=max_cycles {
            if self.mem_quiescent() {
                return Ok(waited);
            }
            self.tick();
        }
        Err(SnapError::NotQuiescent {
            what: format!("memory traffic after {max_cycles} extra cycles"),
        })
    }

    /// Reaches memory quiescence by *draining*: every cycle, cores whose
    /// front end is idle are held back from starting new fetches while
    /// in-flight work (fetches, loads, walks, the store buffer, the
    /// hierarchy) completes. Unlike [`Machine::run_until_mem_quiescent`]
    /// this converges even for streaming workloads that always keep a
    /// miss in flight, at the cost of perturbing timing by the drain
    /// stall — acceptable for warm-forking, where every variant continues
    /// from the same drained state.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::NotQuiescent`] if the machine still has
    /// memory traffic after `max_cycles` (pathological).
    pub fn drain_to_quiescence(&mut self, max_cycles: u64) -> Result<u64, SnapError> {
        for waited in 0..=max_cycles {
            if self.mem_quiescent() {
                return Ok(waited);
            }
            for core in &mut self.cores {
                core.drain_stall_fetch(self.now);
            }
            self.tick();
        }
        Err(SnapError::NotQuiescent {
            what: format!("memory traffic after draining for {max_cycles} cycles"),
        })
    }

    /// Serializes the complete machine state: a versioned header with both
    /// configuration fingerprints, then every core, the memory hierarchy,
    /// and the loaded user images. Identical states produce identical
    /// bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.tag(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u64(self.strict_fingerprint());
        w.u64(self.structural_fingerprint());
        w.u8(self.cfg.variant.index());
        w.u64(self.cfg.cores as u64);
        w.u64(self.now);
        w.bool(self.mem_quiescent());
        for core in &self.cores {
            w.tag(b"CORE");
            core.save_state(&mut w);
        }
        w.tag(b"MEMS");
        self.mem.save_state(&mut w);
        w.tag(b"IMGS");
        self.loaded.save(&mut w);
        w.finish()
    }

    /// Writes [`Machine::snapshot`] to a file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Io`] when the file cannot be written.
    pub fn snapshot_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapError> {
        std::fs::write(path, self.snapshot())?;
        Ok(())
    }

    /// Restores a snapshot into this machine. The snapshot must come from
    /// a machine with the same strict configuration fingerprint (same
    /// variant, knobs, and geometry); the restored machine then continues
    /// bit-identically to the one that was snapshotted.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on corrupt input, a format-version mismatch,
    /// or a configuration mismatch.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        self.restore_inner(bytes, true)
    }

    /// Restores a snapshot taken on a *different* variant with the same
    /// structural fingerprint (the warm-fork path). Unless the strict
    /// fingerprints happen to match, the snapshot must be
    /// memory-quiescent; the LLC re-homes its lines if the indexing
    /// function changed.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::ConfigMismatch`] when machine shapes differ
    /// and [`SnapError::NotQuiescent`] for a non-quiescent cross-variant
    /// snapshot.
    pub fn restore_forked(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        self.restore_inner(bytes, false)
    }

    fn restore_inner(&mut self, bytes: &[u8], strict: bool) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        if r.bytes(4)? != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapError::BadVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let strict_fp = r.u64()?;
        let struct_fp = r.u64()?;
        let variant_idx = r.u8()?;
        let snap_variant = Variant::from_index(variant_idx);
        let cores = r.u64()?;
        let now = r.u64()?;
        let quiescent = r.bool()?;
        let variant_names = || {
            format!(
                "snapshot from {} machine, restoring into {}",
                snap_variant.map(|v| v.name()).unwrap_or("unknown"),
                self.cfg.variant.name()
            )
        };
        let exact = strict_fp == self.strict_fingerprint();
        if strict && !exact {
            return Err(SnapError::ConfigMismatch {
                what: format!(
                    "{} (strict fingerprint {strict_fp:#018x} vs {:#018x}; use \
                     restore_forked to fork a warmed state across variants)",
                    variant_names(),
                    self.strict_fingerprint()
                ),
            });
        }
        if !exact {
            if struct_fp != self.structural_fingerprint() {
                return Err(SnapError::ConfigMismatch {
                    what: format!(
                        "{} (structural fingerprint {struct_fp:#018x} vs {:#018x})",
                        variant_names(),
                        self.structural_fingerprint()
                    ),
                });
            }
            if !quiescent {
                return Err(SnapError::NotQuiescent {
                    what: "memory traffic in the snapshot".into(),
                });
            }
        }
        if cores != self.cfg.cores as u64 {
            return Err(SnapError::ConfigMismatch {
                what: format!("{cores} cores vs {}", self.cfg.cores),
            });
        }
        for core in &mut self.cores {
            r.expect_tag(b"CORE")?;
            core.restore_state(&mut r)?;
        }
        r.expect_tag(b"MEMS")?;
        self.mem.restore_state(&mut r)?;
        r.expect_tag(b"IMGS")?;
        let loaded: Vec<Option<UserImage>> = SnapState::load(&mut r)?;
        if loaded.len() != self.cfg.cores {
            return Err(SnapError::BadValue {
                what: "loaded-image count does not match core count".into(),
            });
        }
        self.loaded = loaded;
        r.expect_end()?;
        self.now = now;
        // A cross-variant fork carries the *source* variant's security
        // CSRs; reprogram them for this machine's toggles (a BASE-warmed
        // `mregions` of all-ones must not neuter a forked MI6 machine).
        if !exact {
            for i in 0..self.cfg.cores {
                if let Some(image) = self.loaded[i] {
                    let (phys_base, _) = Machine::user_phys_window(i);
                    Machine::install_security_csrs(
                        &mut self.cores[i],
                        &self.mem,
                        phys_base,
                        &image,
                    );
                }
            }
        }
        Ok(())
    }

    fn write_auto_checkpoint(&self) {
        let dir = self
            .ckpt_dir
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create checkpoint dir {}: {e}", dir.display()));
        let path = dir.join(format!("ckpt-{:012}.mi6snap", self.now));
        self.snapshot_to(&path)
            .unwrap_or_else(|e| panic!("cannot write checkpoint {}: {e}", path.display()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{Program, DATA_VA};
    use mi6_isa::{Assembler, Inst, Reg};

    /// A user program: writes a value to data, "prints", and exits.
    fn hello_program(syscalls: u64) -> Program {
        let mut asm = Assembler::new(loader::CODE_VA);
        asm.li(Reg::S0, DATA_VA);
        asm.li(Reg::A0, 0x1234_5678);
        asm.push(Inst::sd(Reg::A0, Reg::S0, 0));
        asm.li(Reg::S1, syscalls);
        let loop_top = asm.here();
        asm.li(Reg::A7, kernel::sys::PRINT);
        asm.push(Inst::Ecall);
        asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
        asm.bnez(Reg::S1, loop_top);
        asm.li(Reg::A0, 42);
        asm.li(Reg::A7, kernel::sys::EXIT);
        asm.push(Inst::Ecall);
        Program {
            name: "hello".into(),
            code: asm.assemble().expect("assembles"),
            data_size: 4096,
            data_init: vec![],
            stack_size: 8192,
        }
    }

    #[test]
    fn user_program_runs_and_exits() {
        let mut m = crate::SimBuilder::base().without_timer().build().unwrap();
        m.load_user_program(0, &hello_program(3)).unwrap();
        let stats = m.run_to_completion(10_000_000).unwrap();
        assert!(m.all_halted());
        assert_eq!(m.exit_value(0), 42);
        // 3 print syscalls + 1 exit = 4 user traps, plus the S->M escalation.
        assert!(stats.core[0].traps >= 5, "traps {}", stats.core[0].traps);
        assert_eq!(m.read_user_u64(0, DATA_VA), Some(0x1234_5678));
        // Virtual memory was really used: page walks happened.
        assert!(stats.core[0].page_walks > 0);
    }

    #[test]
    fn timer_preempts_user_code() {
        let mut m = crate::SimBuilder::base()
            .timer_interval(5_000)
            .build()
            .unwrap();
        // Program spins for a while before exiting.
        let mut asm = Assembler::new(loader::CODE_VA);
        asm.li(Reg::S1, 60_000);
        let top = asm.here();
        asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
        asm.bnez(Reg::S1, top);
        asm.li(Reg::A7, kernel::sys::EXIT);
        asm.push(Inst::Ecall);
        let program = Program {
            name: "spin".into(),
            code: asm.assemble().expect("assembles"),
            data_size: 4096,
            data_init: vec![],
            stack_size: 4096,
        };
        m.load_user_program(0, &program).unwrap();
        let stats = m.run_to_completion(10_000_000).unwrap();
        // The spin takes > 30k cycles, so several timer ticks landed.
        assert!(
            stats.core[0].traps >= 4,
            "expected timer traps, got {}",
            stats.core[0].traps
        );
        assert!(stats.core[0].trap_returns >= 3);
    }

    #[test]
    fn flush_variant_runs_slower_with_traps() {
        let run = |variant: Variant| -> u64 {
            let mut m = crate::SimBuilder::new(variant)
                .timer_interval(20_000)
                .build()
                .unwrap();
            m.load_user_program(0, &hello_program(10)).unwrap();
            m.run_to_completion(50_000_000).unwrap().cycles
        };
        let base = run(Variant::Base);
        let flush = run(Variant::Flush);
        assert!(flush > base + 10 * 512, "flush {flush} vs base {base}");
    }

    #[test]
    fn two_cores_run_disjoint_programs() {
        let mut m = crate::SimBuilder::base()
            .cores(2)
            .without_timer()
            .build()
            .unwrap();
        m.load_user_program(0, &hello_program(2)).unwrap();
        m.load_user_program(1, &hello_program(2)).unwrap();
        let stats = m.run_to_completion(20_000_000).unwrap();
        assert!(m.all_halted());
        assert!(stats.core[0].committed_instructions > 0);
        assert!(stats.core[1].committed_instructions > 0);
        // Disjoint physical windows.
        let (b0, l0) = Machine::user_phys_window(0);
        let (b1, _) = Machine::user_phys_window(1);
        assert!(l0 <= b1 && b0 < b1);
    }

    #[test]
    fn snapshot_roundtrip_continues_bit_identically() {
        // Run half the program, snapshot, restore into a fresh machine,
        // and check both finish with identical stats.
        let mut a = crate::SimBuilder::base()
            .timer_interval(5_000)
            .build()
            .unwrap();
        a.load_user_program(0, &hello_program(5)).unwrap();
        a.run_cycles(4_000);
        assert!(!a.all_halted(), "snapshot point must be mid-run");
        let snap = a.snapshot();
        let mut b = crate::SimBuilder::base()
            .timer_interval(5_000)
            .build()
            .unwrap();
        b.restore(&snap).unwrap();
        assert_eq!(b.now(), a.now());
        let sa = a.run_to_completion(10_000_000).unwrap();
        let mut sb = b.run_to_completion(10_000_000).unwrap();
        // `cycles_ticked` is a runtime counter that restarts at restore
        // (B never ticked the warm prefix); everything simulated must
        // still match exactly.
        assert_eq!(sa.cycles_ticked, sb.cycles_ticked + 4_000);
        sb.cycles_ticked = sa.cycles_ticked;
        // The CPI stack is runtime-only too: B's stack accounts exactly
        // the post-restore cycles (its own cycle counter exists for this),
        // still slot-exact over that window.
        let width = b.core(0).config().commit_width as u64;
        assert_eq!(sb.cpi[0].cycles + 4_000, sa.cpi[0].cycles);
        for s in [&sa, &sb] {
            assert_eq!(s.cpi[0].total_slots(), s.cpi[0].cycles * width);
        }
        let mut sa = sa;
        sa.cpi.clear();
        sb.cpi.clear();
        assert_eq!(format!("{sa:?}"), format!("{sb:?}"));
        assert_eq!(b.exit_value(0), 42);
        // Identical states must serialize to identical bytes.
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn checkpointed_idle_skip_lands_on_identical_checkpoints() {
        // Two identical machines with auto-checkpointing: one driven by
        // `run_to_completion` (idle-skip capped at checkpoint boundaries),
        // one ticked every cycle. They must emit the same checkpoint
        // files with byte-identical contents, and end in byte-identical
        // states — the boundary cap plus `note_skipped_cycles` settling
        // `csrs.cycle` is exactly what makes a skip landing on a boundary
        // indistinguishable from having ticked up to it.
        let pid = std::process::id();
        let dir_a = std::env::temp_dir().join(format!("mi6-ckpt-skip-{pid}"));
        let dir_b = std::env::temp_dir().join(format!("mi6-ckpt-tick-{pid}"));
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
        let build = |dir: &std::path::Path| {
            let mut m = crate::SimBuilder::base()
                .without_timer()
                .checkpoint_every(128)
                .checkpoint_dir(dir)
                .build()
                .unwrap();
            m.load_user_program(0, &hello_program(50)).unwrap();
            m
        };
        let mut a = build(&dir_a);
        let mut b = build(&dir_b);
        let _ = a.run_to_completion(3_072); // Timeout is fine; ckpts still land.
        b.run_cycles(3_072);
        assert_eq!(a.now(), b.now());
        assert!(
            a.ticks() < a.now(),
            "idle-skip never engaged ({} ticks for {} cycles)",
            a.ticks(),
            a.now()
        );
        assert_eq!(b.ticks(), b.now(), "twin ticked every cycle");
        assert_eq!(a.snapshot(), b.snapshot(), "final states diverged");
        let list = |dir: &std::path::Path| -> Vec<std::path::PathBuf> {
            let mut v: Vec<_> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            v.sort();
            v
        };
        let (ca, cb) = (list(&dir_a), list(&dir_b));
        assert!(!ca.is_empty(), "no checkpoints written");
        assert_eq!(
            ca.iter()
                .map(|p| p.file_name().unwrap())
                .collect::<Vec<_>>(),
            cb.iter()
                .map(|p| p.file_name().unwrap())
                .collect::<Vec<_>>(),
            "checkpoint cycles diverged"
        );
        for (pa, pb) in ca.iter().zip(&cb) {
            assert_eq!(
                std::fs::read(pa).unwrap(),
                std::fs::read(pb).unwrap(),
                "checkpoint bytes diverged at {}",
                pa.display()
            );
        }
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn snapshot_refuses_mismatched_machine() {
        let mut a = crate::SimBuilder::base().without_timer().build().unwrap();
        a.load_user_program(0, &hello_program(1)).unwrap();
        a.run_cycles(500);
        let snap = a.snapshot();
        // Different variant: strict restore refuses.
        let mut b = crate::SimBuilder::new(Variant::SecureMi6)
            .without_timer()
            .build()
            .unwrap();
        let err = b.restore(&snap).unwrap_err();
        assert!(
            matches!(err, mi6_snapshot::SnapError::ConfigMismatch { .. }),
            "{err}"
        );
        // Different core count: even a forked restore refuses.
        let mut c = crate::SimBuilder::base()
            .cores(2)
            .without_timer()
            .build()
            .unwrap();
        assert!(c.restore_forked(&snap).is_err());
        // Corrupt version: clear error.
        let mut bad = snap.clone();
        bad[4] = 0xff;
        let mut d = crate::SimBuilder::base().without_timer().build().unwrap();
        assert!(matches!(
            d.restore(&bad),
            Err(mi6_snapshot::SnapError::BadVersion { .. })
        ));
        assert!(matches!(
            d.restore(b"nonsense"),
            Err(mi6_snapshot::SnapError::BadMagic)
        ));
    }

    #[test]
    fn quiescent_snapshot_forks_across_variants() {
        let mut warm = crate::SimBuilder::base().without_timer().build().unwrap();
        warm.load_user_program(0, &hello_program(50)).unwrap();
        warm.run_cycles(2_000);
        warm.run_until_mem_quiescent(100_000).unwrap();
        assert!(warm.mem_quiescent());
        let snap = warm.snapshot();
        // Fork the warmed state into the full-MI6 machine (different LLC
        // organization and security toggles, same geometry).
        let mut fork = crate::SimBuilder::new(Variant::SecureMi6)
            .without_timer()
            .build()
            .unwrap();
        fork.restore_forked(&snap).unwrap();
        assert_eq!(fork.now(), warm.now());
        // The BASE warm-up left `mregions` fully permissive; the forked
        // MI6 machine must get its region protection reprogrammed, not
        // inherit a neutered bitvec.
        let bv = RegionBitvec(fork.core(0).csrs.mregions);
        assert!(bv.allows(RegionId(0)), "kernel region allowed");
        assert!(bv.count() < 64, "region checks restored on fork");
        let stats = fork.run_to_completion(20_000_000).unwrap();
        assert!(fork.all_halted());
        assert_eq!(fork.exit_value(0), 42);
        assert_eq!(stats.core[0].region_faults, 0, "no spurious faults");
        assert!(stats.core[0].committed_instructions > 0);
    }

    #[test]
    fn secure_variant_sets_region_bitvec() {
        let mut m = crate::SimBuilder::new(Variant::SecureMi6)
            .without_timer()
            .build()
            .unwrap();
        m.load_user_program(0, &hello_program(1)).unwrap();
        let bv = RegionBitvec(m.core(0).csrs.mregions);
        assert!(bv.allows(RegionId(0)), "kernel region");
        assert!(bv.count() < 64, "not everything allowed");
        let stats = m.run_to_completion(20_000_000).unwrap();
        assert_eq!(stats.core[0].region_faults, 0, "no spurious faults");
        assert!(m.all_halted());
    }
}
