//! The assembled machine: cores + memory hierarchy + toy OS.
//!
//! [`Machine`] is the top-level simulation object the examples, the
//! experiment harness, and the security tests drive. It instantiates one
//! of the evaluation [`Variant`]s, installs the machine-mode stub and the
//! supervisor kernel, loads user programs behind per-core page tables,
//! and ticks cores and memory in lock step until the programs exit.

use crate::kernel::{self, kdata_base, KERNEL_BASE, M_STUB_BASE};
use crate::loader::{self, FrameAllocator, LoadError, Program, UserImage};
use crate::variant::Variant;
use mi6_core::{Core, CoreStats};
use mi6_isa::csr;
use mi6_isa::{Exception, Interrupt, PhysAddr, PrivLevel};
use mi6_mem::{L1Stats, LlcStats, MemSystem, Port, RegionBitvec, RegionId};
use std::fmt;

/// Machine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Which evaluation variant to build.
    pub variant: Variant,
    /// Number of cores.
    pub cores: usize,
    /// Cycles between supervisor timer interrupts (0 disables the timer).
    pub timer_interval: u64,
}

impl MachineConfig {
    /// A machine of `cores` cores for one variant, with the default
    /// 250k-cycle scheduler tick (calibrated so FLUSH's stall fraction
    /// lands near the paper's 0.4 % average, Figure 6).
    pub fn variant(variant: Variant, cores: usize) -> MachineConfig {
        MachineConfig {
            variant,
            cores,
            timer_interval: 250_000,
        }
    }

    /// Disables timer interrupts (purely syscall-driven runs).
    pub fn without_timer(mut self) -> MachineConfig {
        self.timer_interval = 0;
        self
    }

    /// Overrides the timer interval.
    pub fn with_timer_interval(mut self, interval: u64) -> MachineConfig {
        self.timer_interval = interval;
        self
    }
}

/// Error from [`Machine::run_to_completion`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The cycle cap was reached before all cores halted.
    Timeout {
        /// Cycles executed.
        cycles: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Timeout { cycles } => {
                write!(f, "machine did not halt within {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Aggregated statistics after a run.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Per-core pipeline counters.
    pub core: Vec<CoreStats>,
    /// Per-core L1 instruction cache counters.
    pub l1i: Vec<L1Stats>,
    /// Per-core L1 data cache counters.
    pub l1d: Vec<L1Stats>,
    /// Shared LLC counters.
    pub llc: LlcStats,
    /// DRAM (reads, writes, backpressure events).
    pub dram: (u64, u64, u64),
}

impl MachineStats {
    /// LLC misses per thousand committed instructions on core 0
    /// (the Figure 9 metric).
    pub fn llc_mpki(&self) -> f64 {
        let inst = self
            .core
            .first()
            .map(|c| c.committed_instructions)
            .unwrap_or(0);
        if inst == 0 {
            return 0.0;
        }
        self.llc.misses as f64 * 1000.0 / inst as f64
    }

    /// Branch MPKI on core 0 (the Figure 7 metric).
    pub fn branch_mpki(&self) -> f64 {
        self.core
            .first()
            .map(|c| c.mispredicts_per_kinst())
            .unwrap_or(0.0)
    }
}

/// Per-core spacing of the physical windows handed to user programs.
const USER_PHYS_BASE: u64 = 0x0100_0000; // 16 MiB
const USER_PHYS_STRIDE: u64 = 0x2000_0000; // 512 MiB per core
const TABLE_BASE: u64 = 0x0020_0000; // 2 MiB
const TABLE_STRIDE: u64 = 0x0010_0000; // 1 MiB of tables per core

/// The simulated machine.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<Core>,
    mem: MemSystem,
    now: u64,
    loaded: Vec<Option<UserImage>>,
}

impl Machine {
    /// Assembles a machine from fully resolved component configurations
    /// (the [`crate::SimBuilder`] backend: variant defaults plus any
    /// overrides have already been folded into the explicit configs).
    pub(crate) fn assemble(
        cfg: MachineConfig,
        core_cfg: mi6_core::CoreConfig,
        sec_cfg: mi6_core::SecurityConfig,
        mem_cfg: mi6_mem::MemConfig,
    ) -> Machine {
        assert!(cfg.cores >= 1);
        let mut mem = MemSystem::new(mem_cfg, cfg.cores);
        mem.phys
            .load_words(PhysAddr::new(M_STUB_BASE), &kernel::build_m_stub());
        let interval = if cfg.timer_interval == 0 {
            u64::MAX / 2
        } else {
            cfg.timer_interval
        };
        mem.phys
            .load_words(PhysAddr::new(KERNEL_BASE), &kernel::build_kernel(interval));
        let cores = (0..cfg.cores)
            .map(|i| Core::new(i, core_cfg, sec_cfg))
            .collect();
        Machine {
            cfg,
            cores,
            mem,
            now: 0,
            loaded: vec![None; cfg.cores],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Access to a core (e.g. for CSR inspection in tests).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// Mutable access to a core.
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i]
    }

    /// Access to the memory system.
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Mutable access to the memory system.
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// The physical window `[base, limit)` used for core `i`'s user pages.
    pub fn user_phys_window(core: usize) -> (u64, u64) {
        let base = USER_PHYS_BASE + core as u64 * USER_PHYS_STRIDE;
        (base, base + USER_PHYS_STRIDE - USER_PHYS_BASE)
    }

    /// Loads a user program onto core `i` (the toy OS's `execve`) and
    /// points the core at its entry in user mode.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if the program exceeds the core's physical
    /// window or page-table space.
    pub fn load_user_program(&mut self, i: usize, program: &Program) -> Result<(), LoadError> {
        let (phys_base, phys_limit) = Machine::user_phys_window(i);
        let mut frames = FrameAllocator::new(phys_base, phys_limit - phys_base);
        let image = loader::load_program(
            &mut self.mem.phys,
            program,
            TABLE_BASE + i as u64 * TABLE_STRIDE,
            TABLE_STRIDE,
            &mut frames,
            &kernel::kernel_pages(self.cfg.cores),
        )?;
        let interval = self.cfg.timer_interval;
        let core = &mut self.cores[i];
        core.csrs = mi6_isa::csr::CsrFile::new();
        core.csrs.satp = image.satp;
        core.csrs.stvec = KERNEL_BASE;
        core.csrs.mtvec = M_STUB_BASE;
        core.csrs.sscratch = kdata_base(i);
        // Delegate user-visible traps and the supervisor timer to S-mode.
        core.csrs.medeleg = (1 << Exception::EcallFromUser.code())
            | (1 << Exception::Breakpoint.code())
            | (1 << Exception::InstPageFault.code())
            | (1 << Exception::LoadPageFault.code())
            | (1 << Exception::StorePageFault.code())
            | (1 << Exception::LoadMisaligned.code())
            | (1 << Exception::StoreMisaligned.code())
            | (1 << Exception::InstMisaligned.code());
        core.csrs.mideleg = 1 << Interrupt::SupervisorTimer.code();
        core.csrs.mie = 1 << Interrupt::SupervisorTimer.code();
        core.csrs.stimecmp = if interval == 0 {
            u64::MAX
        } else {
            self.now + interval
        };
        // MI6 hardware state: region bitvector and monitor fetch window.
        if core.security().region_checks {
            let map = self.mem.region_map();
            let mut bv = RegionBitvec::none();
            // Kernel + tables live below USER_PHYS_BASE: region 0.
            bv.allow(RegionId(0));
            let mut pa = phys_base;
            while pa < image.phys_end.max(phys_base + 1) {
                bv.allow(map.region_of(PhysAddr::new(pa)));
                pa += map.region_bytes();
            }
            bv.allow(map.region_of(PhysAddr::new(image.phys_end.saturating_sub(1))));
            core.csrs.mregions = bv.0;
        }
        if core.security().machine_mode_guard {
            core.csrs.mfetchbase = M_STUB_BASE;
            core.csrs.mfetchbound = KERNEL_BASE; // the stub only
        }
        core.regs = [0; 32];
        core.regs[mi6_isa::Reg::SP.index() as usize] = image.sp;
        core.halted = false;
        core.reset_to(image.entry, PrivLevel::User);
        self.loaded[i] = Some(image);
        Ok(())
    }

    /// The image loaded on core `i`, if any.
    pub fn image(&self, i: usize) -> Option<&UserImage> {
        self.loaded[i].as_ref()
    }

    /// Advances the whole machine one cycle.
    pub fn tick(&mut self) {
        for core in &mut self.cores {
            core.tick(self.now, &mut self.mem);
        }
        self.mem.tick(self.now);
        self.now += 1;
    }

    /// Runs for `cycles` cycles (or until every core halts).
    pub fn run_cycles(&mut self, cycles: u64) {
        let end = self.now + cycles;
        while self.now < end && !self.all_halted() {
            self.tick();
        }
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted)
    }

    /// Runs until every core halts.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Timeout`] if the machine has not halted after
    /// `max_cycles`.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> Result<MachineStats, RunError> {
        let end = self.now + max_cycles;
        while !self.all_halted() {
            if self.now >= end {
                return Err(RunError::Timeout { cycles: max_cycles });
            }
            self.tick();
        }
        Ok(self.stats())
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            cycles: self.now,
            core: self.cores.iter().map(|c| c.stats).collect(),
            l1i: (0..self.cfg.cores)
                .map(|i| self.mem.l1_stats(i, Port::IFetch))
                .collect(),
            l1d: (0..self.cfg.cores)
                .map(|i| self.mem.l1_stats(i, Port::Data))
                .collect(),
            llc: self.mem.llc_stats(),
            dram: self.mem.dram_stats(),
        }
    }

    /// Reads a u64 from a user virtual address of core `i`'s address
    /// space (test aid; software page walk).
    pub fn read_user_u64(&self, i: usize, va: u64) -> Option<u64> {
        let image = self.loaded[i].as_ref()?;
        let aspace = crate::loader::AddressSpace::probe(image.satp);
        let pa = aspace.translate(&self.mem.phys, va)?;
        Some(self.mem.phys.read_u64(PhysAddr::new(pa)))
    }

    /// The exit register (`a0`) of core `i` at halt.
    pub fn exit_value(&self, i: usize) -> u64 {
        // a0 is saved in the kernel save area on the final ecall.
        self.mem
            .phys
            .read_u64(PhysAddr::new(kdata_base(i) + 10 * 8))
    }

    /// Number of supervisor-level CSR traps core `i`'s kernel absorbed
    /// (from the core's own counter).
    pub fn traps(&self, i: usize) -> u64 {
        self.cores[i].stats.traps
    }

    /// Internal-use accessor for the monitor crate: the CSR file of core
    /// `i`.
    pub fn csrs_mut(&mut self, i: usize) -> &mut mi6_isa::csr::CsrFile {
        let _ = csr::MSTATUS; // keep the import local and explicit
        &mut self.cores[i].csrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{Program, DATA_VA};
    use mi6_isa::{Assembler, Inst, Reg};

    /// A user program: writes a value to data, "prints", and exits.
    fn hello_program(syscalls: u64) -> Program {
        let mut asm = Assembler::new(loader::CODE_VA);
        asm.li(Reg::S0, DATA_VA);
        asm.li(Reg::A0, 0x1234_5678);
        asm.push(Inst::sd(Reg::A0, Reg::S0, 0));
        asm.li(Reg::S1, syscalls);
        let loop_top = asm.here();
        asm.li(Reg::A7, kernel::sys::PRINT);
        asm.push(Inst::Ecall);
        asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
        asm.bnez(Reg::S1, loop_top);
        asm.li(Reg::A0, 42);
        asm.li(Reg::A7, kernel::sys::EXIT);
        asm.push(Inst::Ecall);
        Program {
            name: "hello".into(),
            code: asm.assemble().expect("assembles"),
            data_size: 4096,
            data_init: vec![],
            stack_size: 8192,
        }
    }

    #[test]
    fn user_program_runs_and_exits() {
        let mut m = crate::SimBuilder::base().without_timer().build().unwrap();
        m.load_user_program(0, &hello_program(3)).unwrap();
        let stats = m.run_to_completion(10_000_000).unwrap();
        assert!(m.all_halted());
        assert_eq!(m.exit_value(0), 42);
        // 3 print syscalls + 1 exit = 4 user traps, plus the S->M escalation.
        assert!(stats.core[0].traps >= 5, "traps {}", stats.core[0].traps);
        assert_eq!(m.read_user_u64(0, DATA_VA), Some(0x1234_5678));
        // Virtual memory was really used: page walks happened.
        assert!(stats.core[0].page_walks > 0);
    }

    #[test]
    fn timer_preempts_user_code() {
        let mut m = crate::SimBuilder::base()
            .timer_interval(5_000)
            .build()
            .unwrap();
        // Program spins for a while before exiting.
        let mut asm = Assembler::new(loader::CODE_VA);
        asm.li(Reg::S1, 60_000);
        let top = asm.here();
        asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
        asm.bnez(Reg::S1, top);
        asm.li(Reg::A7, kernel::sys::EXIT);
        asm.push(Inst::Ecall);
        let program = Program {
            name: "spin".into(),
            code: asm.assemble().expect("assembles"),
            data_size: 4096,
            data_init: vec![],
            stack_size: 4096,
        };
        m.load_user_program(0, &program).unwrap();
        let stats = m.run_to_completion(10_000_000).unwrap();
        // The spin takes > 30k cycles, so several timer ticks landed.
        assert!(
            stats.core[0].traps >= 4,
            "expected timer traps, got {}",
            stats.core[0].traps
        );
        assert!(stats.core[0].trap_returns >= 3);
    }

    #[test]
    fn flush_variant_runs_slower_with_traps() {
        let run = |variant: Variant| -> u64 {
            let mut m = crate::SimBuilder::new(variant)
                .timer_interval(20_000)
                .build()
                .unwrap();
            m.load_user_program(0, &hello_program(10)).unwrap();
            m.run_to_completion(50_000_000).unwrap().cycles
        };
        let base = run(Variant::Base);
        let flush = run(Variant::Flush);
        assert!(flush > base + 10 * 512, "flush {flush} vs base {base}");
    }

    #[test]
    fn two_cores_run_disjoint_programs() {
        let mut m = crate::SimBuilder::base()
            .cores(2)
            .without_timer()
            .build()
            .unwrap();
        m.load_user_program(0, &hello_program(2)).unwrap();
        m.load_user_program(1, &hello_program(2)).unwrap();
        let stats = m.run_to_completion(20_000_000).unwrap();
        assert!(m.all_halted());
        assert!(stats.core[0].committed_instructions > 0);
        assert!(stats.core[1].committed_instructions > 0);
        // Disjoint physical windows.
        let (b0, l0) = Machine::user_phys_window(0);
        let (b1, _) = Machine::user_phys_window(1);
        assert!(l0 <= b1 && b0 < b1);
    }

    #[test]
    fn secure_variant_sets_region_bitvec() {
        let mut m = crate::SimBuilder::new(Variant::SecureMi6)
            .without_timer()
            .build()
            .unwrap();
        m.load_user_program(0, &hello_program(1)).unwrap();
        let bv = RegionBitvec(m.core(0).csrs.mregions);
        assert!(bv.allows(RegionId(0)), "kernel region");
        assert!(bv.count() < 64, "not everything allowed");
        let stats = m.run_to_completion(20_000_000).unwrap();
        assert_eq!(stats.core[0].region_faults, 0, "no spurious faults");
        assert!(m.all_halted());
    }
}
