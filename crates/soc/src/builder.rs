//! [`SimBuilder`] — the single configuration surface of the simulator.
//!
//! Everything that used to be scattered across `core::config`,
//! `mem::config`, and `soc::variant` is assembled here: a builder owns the
//! [`Variant`] selection, the core/L1/LLC/DRAM knobs, the supervisor timer
//! interval, and workload placement, and produces a ready-to-run
//! [`Machine`]. Examples, tests, and the experiment harness all construct
//! machines through it; the per-crate config types are implementation
//! details the builder composes.
//!
//! ```
//! use mi6_soc::SimBuilder;
//! use mi6_soc::Variant;
//!
//! let mut machine = SimBuilder::new(Variant::Base)
//!     .cores(2)
//!     .without_timer()
//!     .build()
//!     .unwrap();
//! machine.run_cycles(100);
//! assert_eq!(machine.now(), 100);
//! ```

use crate::loader::{LoadError, Program};
use crate::machine::{Machine, MachineConfig};
use crate::variant::Variant;
use mi6_core::{CoreConfig, SecurityConfig};
use mi6_mem::MemConfig;

/// Default cycles between supervisor timer interrupts (calibrated so
/// FLUSH's stall fraction lands near the paper's 0.4 % average, Figure 6).
pub const DEFAULT_TIMER_INTERVAL: u64 = 250_000;

/// Builder for a fully configured, optionally pre-loaded [`Machine`].
///
/// Construction starts from a [`Variant`] (which fixes the paper
/// configuration for core, caches, and security toggles) and layers
/// overrides on top. [`SimBuilder::build`] assembles the machine and loads
/// any placed workloads.
#[derive(Debug)]
pub struct SimBuilder {
    variant: Variant,
    cores: usize,
    timer_interval: u64,
    core_cfg: Option<CoreConfig>,
    sec_cfg: Option<SecurityConfig>,
    mem_cfg: Option<MemConfig>,
    programs: Vec<(usize, Program)>,
}

impl SimBuilder {
    /// Starts a builder for one evaluation variant with a single core and
    /// the default scheduler tick.
    pub fn new(variant: Variant) -> SimBuilder {
        SimBuilder {
            variant,
            cores: 1,
            timer_interval: DEFAULT_TIMER_INTERVAL,
            core_cfg: None,
            sec_cfg: None,
            mem_cfg: None,
            programs: Vec::new(),
        }
    }

    /// Shorthand for `SimBuilder::new(Variant::Base)`.
    pub fn base() -> SimBuilder {
        SimBuilder::new(Variant::Base)
    }

    /// The variant this builder configures.
    pub fn variant_sel(&self) -> Variant {
        self.variant
    }

    /// Sets the number of cores (default 1).
    pub fn cores(mut self, n: usize) -> SimBuilder {
        assert!(n >= 1, "a machine needs at least one core");
        self.cores = n;
        self
    }

    /// Sets the supervisor timer interval in cycles (0 disables it).
    pub fn timer_interval(mut self, interval: u64) -> SimBuilder {
        self.timer_interval = interval;
        self
    }

    /// Disables timer interrupts (purely syscall-driven runs).
    pub fn without_timer(self) -> SimBuilder {
        self.timer_interval(0)
    }

    /// Replaces the core structural configuration (default: the variant's
    /// Figure-4 configuration).
    pub fn core_config(mut self, cfg: CoreConfig) -> SimBuilder {
        self.core_cfg = Some(cfg);
        self
    }

    /// Replaces the security toggles (default: the variant's).
    pub fn security_config(mut self, cfg: SecurityConfig) -> SimBuilder {
        self.sec_cfg = Some(cfg);
        self
    }

    /// Replaces the whole memory configuration (default: the variant's).
    pub fn mem_config(mut self, cfg: MemConfig) -> SimBuilder {
        self.mem_cfg = Some(cfg);
        self
    }

    /// Tweaks the memory configuration in place, starting from whatever
    /// the variant (or a previous override) established. This is how the
    /// ablation benches toggle individual Figure-3 mechanisms that the
    /// named variants bundle together.
    pub fn tune_mem(mut self, f: impl FnOnce(&mut MemConfig)) -> SimBuilder {
        let mut cfg = self
            .mem_cfg
            .unwrap_or_else(|| self.variant.mem_config(self.cores));
        f(&mut cfg);
        self.mem_cfg = Some(cfg);
        self
    }

    /// Tweaks the core configuration in place.
    pub fn tune_core(mut self, f: impl FnOnce(&mut CoreConfig)) -> SimBuilder {
        let mut cfg = self.core_cfg.unwrap_or_else(|| self.variant.core_config());
        f(&mut cfg);
        self.core_cfg = Some(cfg);
        self
    }

    /// Places a user program on core `core`; it is loaded by
    /// [`SimBuilder::build`].
    pub fn workload(mut self, core: usize, program: Program) -> SimBuilder {
        self.programs.push((core, program));
        self
    }

    /// Assembles the machine and loads every placed workload.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if a placed program exceeds its core's
    /// physical window or page-table space.
    pub fn build(self) -> Result<Machine, LoadError> {
        let cfg = MachineConfig {
            variant: self.variant,
            cores: self.cores,
            timer_interval: self.timer_interval,
        };
        let mem_cfg = self
            .mem_cfg
            .unwrap_or_else(|| self.variant.mem_config(self.cores));
        let core_cfg = self.core_cfg.unwrap_or_else(|| self.variant.core_config());
        let sec_cfg = self
            .sec_cfg
            .unwrap_or_else(|| self.variant.security_config());
        let mut machine = Machine::assemble(cfg, core_cfg, sec_cfg, mem_cfg);
        for (core, program) in &self.programs {
            machine.load_user_program(*core, program)?;
        }
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_mem::{LlcIndexing, MshrOrg};

    #[test]
    fn builder_defaults_match_variant() {
        let m = SimBuilder::new(Variant::Fpma).build().unwrap();
        assert_eq!(m.config().variant, Variant::Fpma);
        assert_eq!(m.config().cores, 1);
        assert_eq!(m.config().timer_interval, DEFAULT_TIMER_INTERVAL);
        assert_eq!(
            m.mem().config().llc.indexing,
            LlcIndexing::Partitioned { region_bits: 2 }
        );
        assert!(m.core(0).security().flush_on_trap);
    }

    #[test]
    fn tune_mem_layers_on_variant_config() {
        let m = SimBuilder::base()
            .tune_mem(|mem| {
                mem.llc.mshrs = MshrOrg::Banked {
                    total: 12,
                    banks: 4,
                }
            })
            .tune_mem(|mem| mem.llc.pipeline_latency += 8)
            .build()
            .unwrap();
        let llc = m.mem().config().llc;
        assert_eq!(
            llc.mshrs,
            MshrOrg::Banked {
                total: 12,
                banks: 4
            }
        );
        assert_eq!(llc.pipeline_latency, 16);
    }

    #[test]
    fn tune_core_overrides_structure() {
        let m = SimBuilder::base()
            .tune_core(|c| c.rob_entries = 16)
            .without_timer()
            .build()
            .unwrap();
        assert_eq!(m.config().timer_interval, 0);
        let _ = m;
    }

    #[test]
    fn multi_core_secure_build() {
        let m = SimBuilder::new(Variant::SecureMi6)
            .cores(2)
            .build()
            .unwrap();
        assert_eq!(m.config().cores, 2);
        assert!(m.core(1).security().region_checks);
    }
}
