//! [`SimBuilder`] — the single configuration surface of the simulator.
//!
//! Everything that used to be scattered across `core::config`,
//! `mem::config`, and `soc::variant` is assembled here: a builder owns the
//! [`Variant`] selection, the core/L1/LLC/DRAM knobs, the supervisor timer
//! interval, and workload placement, and produces a ready-to-run
//! [`Machine`]. Examples, tests, and the experiment harness all construct
//! machines through it; the per-crate config types are implementation
//! details the builder composes.
//!
//! ```
//! use mi6_soc::SimBuilder;
//! use mi6_soc::Variant;
//!
//! let mut machine = SimBuilder::new(Variant::Base)
//!     .cores(2)
//!     .without_timer()
//!     .build()
//!     .unwrap();
//! machine.run_cycles(100);
//! assert_eq!(machine.now(), 100);
//! ```

use crate::loader::{LoadError, Program};
use crate::machine::{Machine, MachineConfig};
use crate::variant::Variant;
use mi6_core::{CoreConfig, SecurityConfig};
use mi6_mem::MemConfig;
use mi6_snapshot::SnapError;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Error from [`SimBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A placed workload did not fit its core's physical window.
    Load(LoadError),
    /// `restore_from` could not read the checkpoint file.
    Io(String),
    /// The checkpoint failed to decode or does not match the configured
    /// machine.
    Restore(SnapError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Load(e) => write!(f, "loading workload: {e}"),
            BuildError::Io(e) => write!(f, "reading checkpoint: {e}"),
            BuildError::Restore(e) => write!(f, "restoring checkpoint: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<LoadError> for BuildError {
    fn from(e: LoadError) -> BuildError {
        BuildError::Load(e)
    }
}

impl From<SnapError> for BuildError {
    fn from(e: SnapError) -> BuildError {
        BuildError::Restore(e)
    }
}

/// Default cycles between supervisor timer interrupts (calibrated so
/// FLUSH's stall fraction lands near the paper's 0.4 % average, Figure 6).
pub const DEFAULT_TIMER_INTERVAL: u64 = 250_000;

/// Builder for a fully configured, optionally pre-loaded [`Machine`].
///
/// Construction starts from a [`Variant`] (which fixes the paper
/// configuration for core, caches, and security toggles) and layers
/// overrides on top. [`SimBuilder::build`] assembles the machine and loads
/// any placed workloads.
#[derive(Debug)]
pub struct SimBuilder {
    variant: Variant,
    cores: usize,
    timer_interval: u64,
    core_cfg: Option<CoreConfig>,
    sec_cfg: Option<SecurityConfig>,
    mem_cfg: Option<MemConfig>,
    programs: Vec<(usize, Program)>,
    ckpt_every: u64,
    ckpt_dir: Option<PathBuf>,
    restore_path: Option<PathBuf>,
    restore_bytes: Option<(Arc<Vec<u8>>, bool)>,
    cancel: Option<Arc<AtomicBool>>,
    trace_path: Option<PathBuf>,
    trace_limit: u64,
    metrics_path: Option<PathBuf>,
    metrics_every: u64,
}

impl SimBuilder {
    /// Starts a builder for one evaluation variant with a single core and
    /// the default scheduler tick.
    pub fn new(variant: Variant) -> SimBuilder {
        SimBuilder {
            variant,
            cores: 1,
            timer_interval: DEFAULT_TIMER_INTERVAL,
            core_cfg: None,
            sec_cfg: None,
            mem_cfg: None,
            programs: Vec::new(),
            ckpt_every: 0,
            ckpt_dir: None,
            restore_path: None,
            restore_bytes: None,
            cancel: None,
            trace_path: None,
            trace_limit: 0,
            metrics_path: None,
            metrics_every: 0,
        }
    }

    /// Shorthand for `SimBuilder::new(Variant::Base)`.
    pub fn base() -> SimBuilder {
        SimBuilder::new(Variant::Base)
    }

    /// The variant this builder configures.
    pub fn variant_sel(&self) -> Variant {
        self.variant
    }

    /// Sets the number of cores (default 1).
    pub fn cores(mut self, n: usize) -> SimBuilder {
        assert!(n >= 1, "a machine needs at least one core");
        self.cores = n;
        self
    }

    /// Sets the supervisor timer interval in cycles (0 disables it).
    pub fn timer_interval(mut self, interval: u64) -> SimBuilder {
        self.timer_interval = interval;
        self
    }

    /// Disables timer interrupts (purely syscall-driven runs).
    pub fn without_timer(self) -> SimBuilder {
        self.timer_interval(0)
    }

    /// Replaces the core structural configuration (default: the variant's
    /// Figure-4 configuration).
    pub fn core_config(mut self, cfg: CoreConfig) -> SimBuilder {
        self.core_cfg = Some(cfg);
        self
    }

    /// Replaces the security toggles (default: the variant's).
    pub fn security_config(mut self, cfg: SecurityConfig) -> SimBuilder {
        self.sec_cfg = Some(cfg);
        self
    }

    /// Replaces the whole memory configuration (default: the variant's).
    pub fn mem_config(mut self, cfg: MemConfig) -> SimBuilder {
        self.mem_cfg = Some(cfg);
        self
    }

    /// Tweaks the memory configuration in place, starting from whatever
    /// the variant (or a previous override) established. This is how the
    /// ablation benches toggle individual Figure-3 mechanisms that the
    /// named variants bundle together.
    pub fn tune_mem(mut self, f: impl FnOnce(&mut MemConfig)) -> SimBuilder {
        let mut cfg = self
            .mem_cfg
            .unwrap_or_else(|| self.variant.mem_config(self.cores));
        f(&mut cfg);
        self.mem_cfg = Some(cfg);
        self
    }

    /// Tweaks the core configuration in place.
    pub fn tune_core(mut self, f: impl FnOnce(&mut CoreConfig)) -> SimBuilder {
        let mut cfg = self.core_cfg.unwrap_or_else(|| self.variant.core_config());
        f(&mut cfg);
        self.core_cfg = Some(cfg);
        self
    }

    /// Places a user program on core `core`; it is loaded by
    /// [`SimBuilder::build`].
    pub fn workload(mut self, core: usize, program: Program) -> SimBuilder {
        self.programs.push((core, program));
        self
    }

    /// Writes an automatic checkpoint every `cycles` cycles while the
    /// machine runs (0 disables; the default). Checkpoints land in the
    /// [`SimBuilder::checkpoint_dir`] as `ckpt-<cycle>.mi6snap`, so a
    /// preempted run can resume from the newest one via
    /// [`SimBuilder::restore_from`].
    pub fn checkpoint_every(mut self, cycles: u64) -> SimBuilder {
        self.ckpt_every = cycles;
        self
    }

    /// Sets the directory automatic checkpoints are written to
    /// (default: the current directory).
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> SimBuilder {
        self.ckpt_dir = Some(dir.into());
        self
    }

    /// Installs a cooperative cancellation flag: while the machine runs
    /// (`run_to_completion`), the flag is polled every few thousand
    /// cycles, and raising it makes the run return
    /// [`crate::RunError::Cancelled`] instead of simulating on. The grid
    /// scheduler hands every machine of a batch the same flag, so a
    /// deadline (or a per-point cancel) interrupts in-flight simulations
    /// mid-machine, not just between points.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> SimBuilder {
        self.cancel = Some(flag);
        self
    }

    /// Writes an instruction lifecycle trace (O3PipeView format, loadable
    /// in Konata) to `path` while the machine runs. Per-op per-stage cycle
    /// stamps are buffered in each core and drained to the file in bulk;
    /// tracing is runtime-only and never affects simulated timing or
    /// snapshot bytes.
    pub fn trace_path(mut self, path: impl Into<PathBuf>) -> SimBuilder {
        self.trace_path = Some(path.into());
        self
    }

    /// Caps the number of retired/squashed ops emitted per core to the
    /// trace file (0 = unlimited, the default). Ops past the cap are
    /// still counted but not written, bounding trace size on long runs.
    pub fn trace_limit(mut self, ops: u64) -> SimBuilder {
        self.trace_limit = ops;
        self
    }

    /// Samples microarchitectural occupancy metrics (ROB/IQ/SB, MSHRs,
    /// LLC queues, arbiter grants, DRAM region activity, ...) every
    /// `every` cycles into `path` as JSONL rows keyed
    /// `(cycle, core, metric)`. Sampling is runtime-only: it never
    /// affects simulated timing or snapshot bytes.
    pub fn metrics(mut self, path: impl Into<PathBuf>, every: u64) -> SimBuilder {
        assert!(every > 0, "metrics sampling interval must be positive");
        self.metrics_path = Some(path.into());
        self.metrics_every = every;
        self
    }

    /// Restores the machine from a checkpoint file right after `build()`
    /// assembles it. The checkpoint must match the configured machine
    /// exactly (same variant and knobs); it overwrites any placed
    /// workloads with the snapshot's memory and images.
    pub fn restore_from(mut self, path: impl Into<PathBuf>) -> SimBuilder {
        self.restore_path = Some(path.into());
        self
    }

    /// Restores the machine from an in-memory snapshot blob right after
    /// `build()` — the [`crate::SnapshotPool`] path, which skips the
    /// file round-trip [`SimBuilder::restore_from`] pays. With `forked`
    /// the restore is the cross-variant [`crate::Machine::restore_forked`]
    /// (structural-fingerprint match, security CSRs re-installed);
    /// otherwise it is the exact [`crate::Machine::restore`].
    /// Takes precedence over `restore_from` when both are set.
    pub fn restore_from_bytes(mut self, snapshot: Arc<Vec<u8>>, forked: bool) -> SimBuilder {
        self.restore_bytes = Some((snapshot, forked));
        self
    }

    /// Assembles the machine, loads every placed workload, and applies
    /// [`SimBuilder::restore_from`] when set.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Load`] if a placed program exceeds its
    /// core's physical window or page-table space, and
    /// [`BuildError::Io`]/[`BuildError::Restore`] when a requested
    /// checkpoint restore fails.
    pub fn build(self) -> Result<Machine, BuildError> {
        let cfg = MachineConfig {
            variant: self.variant,
            cores: self.cores,
            timer_interval: self.timer_interval,
        };
        let mem_cfg = self
            .mem_cfg
            .unwrap_or_else(|| self.variant.mem_config(self.cores));
        let core_cfg = self.core_cfg.unwrap_or_else(|| self.variant.core_config());
        let sec_cfg = self
            .sec_cfg
            .unwrap_or_else(|| self.variant.security_config());
        let mut machine = Machine::assemble(cfg, core_cfg, sec_cfg, mem_cfg);
        for (core, program) in &self.programs {
            machine.load_user_program(*core, program)?;
        }
        if let Some((bytes, forked)) = &self.restore_bytes {
            if *forked {
                machine.restore_forked(bytes)?;
            } else {
                machine.restore(bytes)?;
            }
        } else if let Some(path) = &self.restore_path {
            let bytes = std::fs::read(path)
                .map_err(|e| BuildError::Io(format!("{}: {e}", path.display())))?;
            machine.restore(&bytes)?;
        }
        machine.set_checkpointing(self.ckpt_every, self.ckpt_dir);
        machine.set_cancel_flag(self.cancel);
        machine
            .set_observability(
                self.trace_path.as_deref(),
                self.trace_limit,
                self.metrics_path.as_deref(),
                self.metrics_every,
            )
            .map_err(BuildError::Io)?;
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_mem::{LlcIndexing, MshrOrg};

    #[test]
    fn builder_defaults_match_variant() {
        let m = SimBuilder::new(Variant::Fpma).build().unwrap();
        assert_eq!(m.config().variant, Variant::Fpma);
        assert_eq!(m.config().cores, 1);
        assert_eq!(m.config().timer_interval, DEFAULT_TIMER_INTERVAL);
        assert_eq!(
            m.mem().config().llc.indexing,
            LlcIndexing::Partitioned { region_bits: 2 }
        );
        assert!(m.core(0).security().flush_on_trap);
    }

    #[test]
    fn tune_mem_layers_on_variant_config() {
        let m = SimBuilder::base()
            .tune_mem(|mem| {
                mem.llc.mshrs = MshrOrg::Banked {
                    total: 12,
                    banks: 4,
                }
            })
            .tune_mem(|mem| mem.llc.pipeline_latency += 8)
            .build()
            .unwrap();
        let llc = m.mem().config().llc;
        assert_eq!(
            llc.mshrs,
            MshrOrg::Banked {
                total: 12,
                banks: 4
            }
        );
        assert_eq!(llc.pipeline_latency, 16);
    }

    #[test]
    fn tune_core_overrides_structure() {
        let m = SimBuilder::base()
            .tune_core(|c| c.rob_entries = 16)
            .without_timer()
            .build()
            .unwrap();
        assert_eq!(m.config().timer_interval, 0);
        let _ = m;
    }

    #[test]
    fn checkpoint_knobs_round_trip_through_files() {
        let dir = std::env::temp_dir().join(format!("mi6-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A machine that auto-checkpoints every 2k cycles.
        let mut m = SimBuilder::base()
            .without_timer()
            .checkpoint_every(2_000)
            .checkpoint_dir(&dir)
            .build()
            .unwrap();
        m.run_cycles(6_500);
        let mut ckpts: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        ckpts.sort();
        assert_eq!(ckpts.len(), 3, "checkpoints at 2k, 4k, 6k");
        // Resume from the newest checkpoint and converge with the original.
        let mut resumed = SimBuilder::base()
            .without_timer()
            .restore_from(ckpts.last().unwrap())
            .build()
            .unwrap();
        assert_eq!(resumed.now(), 6_000);
        resumed.run_cycles(500);
        assert_eq!(resumed.now(), m.now());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_from_missing_file_is_io_error() {
        let err = SimBuilder::base()
            .restore_from("/nonexistent/mi6.snap")
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Io(_)), "{err}");
    }

    #[test]
    fn cancel_flag_interrupts_a_run() {
        use crate::loader;
        use crate::machine::RunError;
        use mi6_isa::{Assembler, Inst, Reg};
        // A long-spinning user program stands in for a grid point.
        let mut asm = Assembler::new(loader::CODE_VA);
        asm.li(Reg::S1, 10_000_000);
        let top = asm.here();
        asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
        asm.bnez(Reg::S1, top);
        asm.li(Reg::A7, crate::kernel::sys::EXIT);
        asm.push(Inst::Ecall);
        let spin = Program {
            name: "spin".into(),
            code: asm.assemble().expect("assembles"),
            data_size: 4096,
            data_init: vec![],
            stack_size: 4096,
        };
        let flag = Arc::new(AtomicBool::new(false));
        let mut m = SimBuilder::base()
            .without_timer()
            .workload(0, spin)
            .cancel_flag(Arc::clone(&flag))
            .build()
            .unwrap();
        // Not raised: runs normally.
        m.run_cycles(10_000);
        assert!(!m.all_halted());
        flag.store(true, std::sync::atomic::Ordering::SeqCst);
        let err = m.run_to_completion(1_000_000_000).unwrap_err();
        assert!(matches!(err, RunError::Cancelled { .. }), "{err}");
        // The machine stopped within one poll window of where it was.
        assert!(m.now() < 10_000 + 5_000, "stopped late: {}", m.now());
    }

    #[test]
    fn multi_core_secure_build() {
        let m = SimBuilder::new(Variant::SecureMi6)
            .cores(2)
            .build()
            .unwrap();
        assert_eq!(m.config().cores, 2);
        assert!(m.core(1).security().region_checks);
    }
}
