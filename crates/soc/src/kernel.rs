//! The tiny untrusted OS and the machine-mode stub.
//!
//! The kernel is deliberately small but *real*: it is assembled into the
//! toy ISA and executes on the simulated pipeline, so every trap costs
//! genuine fetches, loads, stores, and branches — the footprint whose
//! cold restart after a FLUSH the paper measures (Section 7.1, and the
//! xalancbmk syscall anecdote of Figure 6).
//!
//! Per trap the handler saves all 31 integer registers to a per-core save
//! area (via `sscratch`), dispatches on `scause`, and restores:
//!
//! - **supervisor timer**: reprograms `stimecmp`, runs a small scheduler
//!   stub that touches kernel data, and returns.
//! - **user `ecall`**: `a7 = 0` exits (escalating to machine mode, which
//!   halts the simulated core), `a7 = 1` is the "print" syscall that runs
//!   a buffer-walking loop, everything else is a no-op.
//! - anything unexpected escalates to machine mode.

use mi6_isa::csr;
use mi6_isa::{Assembler, CsrOp, Inst, Reg};

/// Physical/virtual address of the machine-mode stub (`mtvec`).
pub const M_STUB_BASE: u64 = 0x1000;
/// Physical/virtual address of the kernel trap handler (`stvec`).
pub const KERNEL_BASE: u64 = 0x2000;
/// Base of per-core kernel data pages (save area + scratch buffers).
pub const KDATA_BASE: u64 = 0x8000;
/// Bytes of kernel data per core (one page).
pub const KDATA_STRIDE: u64 = 0x1000;
/// Offset of the scheduler's working array within a core's kernel page.
pub const SCHED_BUF_OFF: i32 = 0x800;
/// Offset of the print syscall's buffer within a core's kernel page.
pub const PRINT_BUF_OFF: i32 = 0xc00;

/// Syscall numbers (in `a7`).
pub mod sys {
    /// Terminate the program; the machine run loop observes the halt.
    pub const EXIT: u64 = 0;
    /// "Print": a syscall with a realistic kernel-side footprint.
    pub const PRINT: u64 = 1;
    /// No-op syscall (minimum round-trip cost).
    pub const NOP: u64 = 2;
}

/// The kernel data page for a core.
pub fn kdata_base(core: usize) -> u64 {
    KDATA_BASE + core as u64 * KDATA_STRIDE
}

/// Kernel pages to map into every address space as `(pa, writable)`.
pub fn kernel_pages(cores: usize) -> Vec<(u64, bool)> {
    let mut pages = vec![(KERNEL_BASE, false), (KERNEL_BASE + 0x1000, false)];
    for core in 0..cores {
        pages.push((kdata_base(core), true));
    }
    pages
}

fn csrr(rd: Reg, csr: u16) -> Inst {
    Inst::Csr {
        op: CsrOp::Rs,
        rd,
        rs1: Reg::ZERO,
        csr,
    }
}

fn csrw(csr: u16, rs1: Reg) -> Inst {
    Inst::Csr {
        op: CsrOp::Rw,
        rd: Reg::ZERO,
        rs1,
        csr,
    }
}

/// Assembles the machine-mode stub: any machine trap halts the core
/// (the simulation convention for "the run is over"). In the full MI6
/// machine the security monitor replaces this stub.
pub fn build_m_stub() -> Vec<u32> {
    let mut asm = Assembler::new(M_STUB_BASE);
    asm.push(Inst::Ebreak);
    asm.assemble().expect("m-stub assembles")
}

/// Assembles the supervisor kernel. `timer_interval` is baked into the
/// timer handler (cycles between scheduler ticks).
pub fn build_kernel(timer_interval: u64) -> Vec<u32> {
    let mut asm = Assembler::new(KERNEL_BASE);
    let timer = asm.new_label();
    let syscall = asm.new_label();
    let restore = asm.new_label();
    let escalate = asm.new_label();
    let sys_exit = asm.new_label();
    let sys_print = asm.new_label();

    // ---- save all registers ----
    // t0 <- save base, sscratch <- user t0
    asm.push(Inst::Csr {
        op: CsrOp::Rw,
        rd: Reg::T0,
        rs1: Reg::T0,
        csr: csr::SSCRATCH,
    });
    for i in 1..32u8 {
        let r = Reg::new(i);
        if r == Reg::T0 {
            continue;
        }
        asm.push(Inst::sd(r, Reg::T0, i as i32 * 8));
    }
    // user t0 via a second swap-free read
    asm.push(csrr(Reg::T1, csr::SSCRATCH));
    asm.push(Inst::sd(Reg::T1, Reg::T0, 5 * 8));

    // ---- dispatch on scause ----
    asm.push(csrr(Reg::T1, csr::SCAUSE));
    // supervisor timer interrupt: (1<<63) | 5
    asm.li(Reg::T2, (1 << 63) | 5);
    asm.beq(Reg::T1, Reg::T2, timer);
    // ecall from user: 8
    asm.li(Reg::T2, 8);
    asm.beq(Reg::T1, Reg::T2, syscall);
    asm.jump(escalate);

    // ---- timer handler ----
    asm.bind(timer);
    asm.push(csrr(Reg::T2, csr::CYCLE));
    asm.li(Reg::T3, timer_interval);
    asm.push(Inst::add(Reg::T2, Reg::T2, Reg::T3));
    asm.push(csrw(csr::STIMECMP, Reg::T2));
    // Scheduler stub: walk 32 words of kernel data (run-queue touch).
    asm.push(Inst::addi(Reg::T3, Reg::T0, SCHED_BUF_OFF));
    asm.li(Reg::T4, 32);
    let sched_loop = asm.here();
    asm.push(Inst::ld(Reg::T5, Reg::T3, 0));
    asm.push(Inst::addi(Reg::T5, Reg::T5, 1));
    asm.push(Inst::sd(Reg::T5, Reg::T3, 0));
    asm.push(Inst::addi(Reg::T3, Reg::T3, 8));
    asm.push(Inst::addi(Reg::T4, Reg::T4, -1));
    asm.bnez(Reg::T4, sched_loop);
    asm.jump(restore);

    // ---- syscall dispatch ----
    asm.bind(syscall);
    // sepc += 4 so sret resumes past the ecall
    asm.push(csrr(Reg::T2, csr::SEPC));
    asm.push(Inst::addi(Reg::T2, Reg::T2, 4));
    asm.push(csrw(csr::SEPC, Reg::T2));
    asm.push(Inst::ld(Reg::T3, Reg::T0, 17 * 8)); // saved a7
    asm.beqz(Reg::T3, sys_exit);
    asm.li(Reg::T4, sys::PRINT);
    asm.beq(Reg::T3, Reg::T4, sys_print);
    asm.jump(restore); // unknown syscall: no-op

    // ---- exit: escalate to machine mode, which halts ----
    asm.bind(sys_exit);
    asm.bind(escalate);
    asm.push(Inst::Ecall);

    // ---- print: walk the print buffer (realistic kernel footprint) ----
    asm.bind(sys_print);
    asm.push(Inst::addi(Reg::T3, Reg::T0, PRINT_BUF_OFF));
    asm.li(Reg::T4, 64);
    let print_loop = asm.here();
    asm.push(Inst::ld(Reg::T5, Reg::T3, 0));
    asm.push(Inst::Xor {
        rd: Reg::T5,
        rs1: Reg::T5,
        rs2: Reg::T4,
    });
    asm.push(Inst::sd(Reg::T5, Reg::T3, 0));
    asm.push(Inst::addi(Reg::T3, Reg::T3, 8));
    asm.push(Inst::addi(Reg::T4, Reg::T4, -1));
    asm.bnez(Reg::T4, print_loop);
    asm.jump(restore);

    // ---- restore all registers and return ----
    asm.bind(restore);
    for i in 1..32u8 {
        let r = Reg::new(i);
        if r == Reg::T0 {
            continue;
        }
        asm.push(Inst::ld(r, Reg::T0, i as i32 * 8));
    }
    asm.push(csrw(csr::SSCRATCH, Reg::T0));
    asm.push(Inst::ld(Reg::T0, Reg::T0, 5 * 8));
    asm.push(Inst::Sret);

    asm.assemble().expect("kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_fits_in_its_pages() {
        let words = build_kernel(100_000);
        // Two pages are mapped for kernel text.
        assert!(
            words.len() * 4 <= 2 * 4096,
            "kernel is {} bytes",
            words.len() * 4
        );
        assert!(words.len() > 80, "kernel should have a real footprint");
    }

    #[test]
    fn m_stub_is_one_ebreak() {
        let words = build_m_stub();
        assert_eq!(words.len(), 1);
        assert_eq!(mi6_isa::decode(words[0]).unwrap(), Inst::Ebreak);
    }

    #[test]
    fn kernel_pages_cover_cores() {
        let pages = kernel_pages(2);
        assert!(pages.contains(&(KERNEL_BASE, false)));
        assert!(pages.contains(&(kdata_base(0), true)));
        assert!(pages.contains(&(kdata_base(1), true)));
    }
}
