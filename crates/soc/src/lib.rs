//! # mi6-soc
//!
//! The assembled MI6 machine: cores (`mi6-core`) plus the shared memory
//! hierarchy (`mi6-mem`), the seven evaluation processor variants of the
//! paper's Section 7, a tiny untrusted supervisor OS (trap handler,
//! syscalls, timer-driven scheduler stub), and the user-program loader
//! with real three-level page tables.
//!
//! Entry point: [`SimBuilder`]. Pick a [`Variant`], layer any overrides,
//! place [`Program`]s (usually from `mi6-workloads`), and build a
//! [`Machine`] to run.
//!
//! ```
//! use mi6_soc::{SimBuilder, Variant};
//! use mi6_soc::loader::Program;
//! use mi6_isa::{Assembler, Inst, Reg};
//!
//! // A user program that immediately exits with status 7.
//! let mut asm = Assembler::new(mi6_soc::loader::CODE_VA);
//! asm.li(Reg::A0, 7);
//! asm.li(Reg::A7, mi6_soc::kernel::sys::EXIT);
//! asm.push(Inst::Ecall);
//! let program = Program {
//!     name: "exit7".into(),
//!     code: asm.assemble().unwrap(),
//!     data_size: 4096,
//!     data_init: vec![],
//!     stack_size: 4096,
//! };
//!
//! let mut machine = SimBuilder::new(Variant::Base)
//!     .without_timer()
//!     .workload(0, program)
//!     .build()
//!     .unwrap();
//! let stats = machine.run_to_completion(10_000_000).unwrap();
//! assert_eq!(machine.exit_value(0), 7);
//! assert!(stats.core[0].committed_instructions > 0);
//! ```

pub mod builder;
pub mod kernel;
pub mod loader;
pub mod machine;
pub mod pool;
pub mod variant;

pub use builder::{BuildError, SimBuilder, DEFAULT_TIMER_INTERVAL};
pub use loader::{LoadError, Program, UserImage};
pub use machine::{Machine, MachineConfig, MachineStats, RunError, SliceOutcome};
pub use pool::{PoolKey, SnapshotPool};
pub use variant::Variant;
