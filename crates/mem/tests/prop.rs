//! Property-based tests for the memory hierarchy's data structures and a
//! liveness property of the full LLC protocol under random traffic.

use mi6_isa::PhysAddr;
use mi6_mem::{
    DelayFifo, L1Access, LlcConfig, MemConfig, MemSystem, MshrOrg, PhysMem, Port, RegionBitvec,
    RegionId,
};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// PhysMem behaves like a flat byte array (model-based).
    #[test]
    fn physmem_matches_model(ops in prop::collection::vec(
        (0u64..8192, any::<u64>(), 1usize..=8, any::<bool>()), 1..200))
    {
        let mut mem = PhysMem::new(16384);
        let mut model = vec![0u8; 16384];
        for (addr, value, n, is_write) in ops {
            let addr = addr.min(16384 - 8);
            if is_write {
                mem.write_bytes(PhysAddr::new(addr), value, n);
                for i in 0..n {
                    model[addr as usize + i] = (value >> (8 * i)) as u8;
                }
            } else {
                let got = mem.read_bytes(PhysAddr::new(addr), n);
                let mut want = 0u64;
                for i in 0..n {
                    want |= (model[addr as usize + i] as u64) << (8 * i);
                }
                prop_assert_eq!(got, want);
            }
        }
    }

    /// DelayFifo preserves order and never delivers early.
    #[test]
    fn delay_fifo_order_and_latency(
        latency in 0u32..8,
        pushes in prop::collection::vec(0u64..100, 1..50),
    ) {
        let mut fifo = DelayFifo::new(64, latency);
        let mut model: VecDeque<(u64, u64)> = VecDeque::new();
        let mut now = 0u64;
        for (i, gap) in pushes.iter().enumerate() {
            now += gap;
            if fifo.push(now, i as u64) {
                model.push_back((now + latency as u64, i as u64));
            }
            // Drain anything ready.
            while let Some(v) = fifo.pop(now) {
                let (ready, want) = model.pop_front().expect("model has it");
                prop_assert!(ready <= now, "delivered {} early", v);
                prop_assert_eq!(v, want);
            }
        }
        // Drain the rest far in the future.
        now += 1000;
        while let Some(v) = fifo.pop(now) {
            let (_, want) = model.pop_front().expect("model has it");
            prop_assert_eq!(v, want);
        }
        prop_assert!(model.is_empty());
    }

    /// Region bitvector set operations match a HashSet model.
    #[test]
    fn region_bitvec_model(ops in prop::collection::vec((0u32..64, any::<bool>()), 1..100)) {
        let mut bv = RegionBitvec::none();
        let mut model = std::collections::HashSet::new();
        for (r, add) in ops {
            if add {
                bv.allow(RegionId(r));
                model.insert(r);
            } else {
                bv.deny(RegionId(r));
                model.remove(&r);
            }
            prop_assert_eq!(bv.count() as usize, model.len());
            prop_assert_eq!(bv.allows(RegionId(r)), model.contains(&r));
        }
    }
}

/// Liveness: every memory request eventually completes, for random access
/// sequences, on both the Figure-2 and Figure-3 LLCs.
fn llc_liveness(cfg: MemConfig, accesses: &[(u64, bool)]) {
    let mut sys = MemSystem::new(cfg, 1);
    let mut now = 0u64;
    let mut outstanding = Vec::new();
    let mut next_token = 0u64;
    let mut pending: VecDeque<(u64, bool)> = accesses.iter().copied().collect();
    let deadline = 400_000 + accesses.len() as u64 * 2_000;
    while (!pending.is_empty() || !outstanding.is_empty()) && now < deadline {
        if let Some(&(addr, store)) = pending.front() {
            let token = next_token;
            match sys.access(now, 0, Port::Data, token, PhysAddr::new(addr), store) {
                L1Access::Hit { .. } => {
                    pending.pop_front();
                    next_token += 1;
                }
                L1Access::Miss => {
                    pending.pop_front();
                    outstanding.push(token);
                    next_token += 1;
                }
                L1Access::Blocked => {}
            }
        }
        sys.tick(now);
        for done in sys.take_completions(0, Port::Data) {
            outstanding.retain(|&t| t != done.token);
        }
        now += 1;
    }
    assert!(
        pending.is_empty() && outstanding.is_empty(),
        "requests stuck: {} pending, {} outstanding after {now} cycles",
        pending.len(),
        outstanding.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn figure2_llc_liveness(
        raw in prop::collection::vec((0u64..(1 << 22), any::<bool>()), 1..120)
    ) {
        let accesses: Vec<(u64, bool)> =
            raw.iter().map(|&(a, s)| (a & !63, s)).collect();
        llc_liveness(MemConfig::paper_base(), &accesses);
    }

    #[test]
    fn figure3_llc_liveness(
        raw in prop::collection::vec((0u64..(1 << 22), any::<bool>()), 1..120)
    ) {
        let accesses: Vec<(u64, bool)> =
            raw.iter().map(|&(a, s)| (a & !63, s)).collect();
        llc_liveness(MemConfig::paper_secure(1), &accesses);
    }

    #[test]
    fn banked_mshr_llc_liveness(
        raw in prop::collection::vec((0u64..(1 << 22), any::<bool>()), 1..120)
    ) {
        let mut cfg = MemConfig::paper_base();
        cfg.llc.mshrs = MshrOrg::Banked { total: 12, banks: 4 };
        let accesses: Vec<(u64, bool)> =
            raw.iter().map(|&(a, s)| (a & !63, s)).collect();
        llc_liveness(cfg, &accesses);
    }
}

#[test]
fn secure_llc_config_is_figure_3() {
    let cfg = LlcConfig::paper_secure(2, 24);
    assert_eq!(cfg.mshrs, MshrOrg::PerCore { per_core: 6 });
}
