//! Property-based tests for the memory hierarchy's data structures and a
//! liveness property of the full LLC protocol under random traffic.
//!
//! Dependency-free property testing: each property runs over a
//! deterministic stream of pseudo-random operation sequences (splitmix64)
//! instead of proptest's generated cases.

use mi6_isa::PhysAddr;
use mi6_mem::{
    DelayFifo, L1Access, LlcConfig, MemConfig, MemSystem, MshrOrg, PhysMem, Port, RegionBitvec,
    RegionId,
};
use std::collections::VecDeque;

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// PhysMem behaves like a flat byte array (model-based).
#[test]
fn physmem_matches_model() {
    for case in 0..50u64 {
        let mut rng = SplitMix64(0x100 + case);
        let mut mem = PhysMem::new(16384);
        let mut model = vec![0u8; 16384];
        let ops = 1 + rng.below(200);
        for _ in 0..ops {
            let addr = rng.below(8192).min(16384 - 8);
            let value = rng.next_u64();
            let n = 1 + rng.below(8) as usize;
            if rng.next_u64() & 1 != 0 {
                mem.write_bytes(PhysAddr::new(addr), value, n);
                for i in 0..n {
                    model[addr as usize + i] = (value >> (8 * i)) as u8;
                }
            } else {
                let got = mem.read_bytes(PhysAddr::new(addr), n);
                let mut want = 0u64;
                for i in 0..n {
                    want |= (model[addr as usize + i] as u64) << (8 * i);
                }
                assert_eq!(got, want, "case {case} addr {addr:#x} n {n}");
            }
        }
    }
}

/// DelayFifo preserves order and never delivers early.
#[test]
fn delay_fifo_order_and_latency() {
    for case in 0..100u64 {
        let mut rng = SplitMix64(0x200 + case);
        let latency = rng.below(8) as u32;
        let mut fifo = DelayFifo::new(64, latency);
        let mut model: VecDeque<(u64, u64)> = VecDeque::new();
        let mut now = 0u64;
        let pushes = 1 + rng.below(50);
        for i in 0..pushes {
            now += rng.below(100);
            if fifo.push(now, i) {
                model.push_back((now + latency as u64, i));
            }
            // Drain anything ready.
            while let Some(v) = fifo.pop(now) {
                let (ready, want) = model.pop_front().expect("model has it");
                assert!(ready <= now, "delivered {v} early");
                assert_eq!(v, want);
            }
        }
        // Drain the rest far in the future.
        now += 1000;
        while let Some(v) = fifo.pop(now) {
            let (_, want) = model.pop_front().expect("model has it");
            assert_eq!(v, want);
        }
        assert!(model.is_empty());
    }
}

/// Region bitvector set operations match a HashSet model.
#[test]
fn region_bitvec_model() {
    for case in 0..100u64 {
        let mut rng = SplitMix64(0x300 + case);
        let mut bv = RegionBitvec::none();
        let mut model = std::collections::HashSet::new();
        let ops = 1 + rng.below(100);
        for _ in 0..ops {
            let r = rng.below(64) as u32;
            if rng.next_u64() & 1 != 0 {
                bv.allow(RegionId(r));
                model.insert(r);
            } else {
                bv.deny(RegionId(r));
                model.remove(&r);
            }
            assert_eq!(bv.count() as usize, model.len());
            assert_eq!(bv.allows(RegionId(r)), model.contains(&r));
        }
    }
}

/// Liveness: every memory request eventually completes, for random access
/// sequences, on both the Figure-2 and Figure-3 LLCs.
fn llc_liveness(cfg: MemConfig, accesses: &[(u64, bool)]) {
    let mut sys = MemSystem::new(cfg, 1);
    let mut now = 0u64;
    let mut outstanding = Vec::new();
    let mut next_token = 0u64;
    let mut pending: VecDeque<(u64, bool)> = accesses.iter().copied().collect();
    let deadline = 400_000 + accesses.len() as u64 * 2_000;
    while (!pending.is_empty() || !outstanding.is_empty()) && now < deadline {
        if let Some(&(addr, store)) = pending.front() {
            let token = next_token;
            match sys.access(now, 0, Port::Data, token, PhysAddr::new(addr), store) {
                L1Access::Hit { .. } => {
                    pending.pop_front();
                    next_token += 1;
                }
                L1Access::Miss => {
                    pending.pop_front();
                    outstanding.push(token);
                    next_token += 1;
                }
                L1Access::Blocked => {}
            }
        }
        sys.tick(now);
        for done in sys.take_completions(0, Port::Data) {
            outstanding.retain(|&t| t != done.token);
        }
        now += 1;
    }
    assert!(
        pending.is_empty() && outstanding.is_empty(),
        "requests stuck: {} pending, {} outstanding after {now} cycles",
        pending.len(),
        outstanding.len()
    );
}

/// A random line-aligned access sequence.
fn random_accesses(rng: &mut SplitMix64) -> Vec<(u64, bool)> {
    let n = 1 + rng.below(120);
    (0..n)
        .map(|_| (rng.below(1 << 22) & !63, rng.next_u64() & 1 != 0))
        .collect()
}

#[test]
fn figure2_llc_liveness() {
    for case in 0..12u64 {
        let mut rng = SplitMix64(0x400 + case);
        llc_liveness(MemConfig::paper_base(), &random_accesses(&mut rng));
    }
}

#[test]
fn figure3_llc_liveness() {
    for case in 0..12u64 {
        let mut rng = SplitMix64(0x500 + case);
        llc_liveness(MemConfig::paper_secure(1), &random_accesses(&mut rng));
    }
}

#[test]
fn banked_mshr_llc_liveness() {
    for case in 0..12u64 {
        let mut rng = SplitMix64(0x600 + case);
        let mut cfg = MemConfig::paper_base();
        cfg.llc.mshrs = MshrOrg::Banked {
            total: 12,
            banks: 4,
        };
        llc_liveness(cfg, &random_accesses(&mut rng));
    }
}

#[test]
fn secure_llc_config_is_figure_3() {
    let cfg = LlcConfig::paper_secure(2, 24);
    assert_eq!(cfg.mshrs, MshrOrg::PerCore { per_core: 6 });
}
