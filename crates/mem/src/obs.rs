//! Runtime-only observability counters for the memory hierarchy.
//!
//! [`MemObs`] is attached to the LLC only when the SoC enables metrics
//! sampling (via [`crate::MemSystem::enable_obs`]). Everything here is
//! measurement-only state: it is never serialized into snapshots — so
//! turning observability on cannot perturb checkpoint bytes — and it is
//! zeroed on restore (observed history does not survive a state reload).
//! When the struct is absent, the hot paths pay a single `Option` check.

/// Per-core arbiter and per-region DRAM activity counters.
#[derive(Debug)]
pub struct MemObs {
    /// Pipeline-entry admissions granted by the LLC arbiter, per core.
    pub arb_grants: Vec<u64>,
    /// Cycles a core had an admissible message (a downgrade response or
    /// an MSHR awaiting pipeline entry) while the admission slot went to
    /// another core or idled, per core.
    pub arb_denials: Vec<u64>,
    /// DRAM read requests accepted, per DRAM region.
    pub dram_region_reads: Vec<u64>,
    /// DRAM writebacks accepted, per DRAM region.
    pub dram_region_writes: Vec<u64>,
}

impl MemObs {
    /// Creates zeroed counters for `cores` cores and `regions` regions.
    pub fn new(cores: usize, regions: usize) -> MemObs {
        MemObs {
            arb_grants: vec![0; cores],
            arb_denials: vec![0; cores],
            dram_region_reads: vec![0; regions],
            dram_region_writes: vec![0; regions],
        }
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        self.arb_grants.fill(0);
        self.arb_denials.fill(0);
        self.dram_region_reads.fill(0);
        self.dram_region_writes.fill(0);
    }

    /// Notes one request accepted by the DRAM controller.
    pub(crate) fn note_dram(&mut self, region: usize, is_write: bool) {
        if is_write {
            self.dram_region_writes[region] += 1;
        } else {
            self.dram_region_reads[region] += 1;
        }
    }
}
