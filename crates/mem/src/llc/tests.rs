//! Unit tests for the LLC (both the Figure-2 and Figure-3 models).

use super::*;
use crate::config::{DramConfig, LINK_CAPACITY};

const LAT: u32 = 0; // zero link latency makes cycle math exact

struct Rig {
    llc: Llc,
    links: Vec<CoreLink>,
    dram: Dram,
    now: u64,
}

impl Rig {
    fn new(cfg: LlcConfig, cores: usize) -> Rig {
        let dram_cfg = DramConfig::paper();
        Rig {
            llc: Llc::new(cfg, cores, RegionMap::new(&dram_cfg)),
            links: (0..cores)
                .map(|_| CoreLink::new(LINK_CAPACITY, LAT))
                .collect(),
            dram: Dram::new(&dram_cfg),
            now: 0,
        }
    }

    fn request(&mut self, core: usize, line: u64, want: MsiState) {
        let child = ChildId::l1d(core);
        let ok = self.links[core].up_req.push(
            self.now,
            UpgradeReq {
                child,
                line: PhysAddr::new(line),
                want,
            },
        );
        assert!(ok, "request fifo full");
    }

    fn tick(&mut self) {
        self.llc.tick(self.now, &mut self.links, &mut self.dram);
        self.now += 1;
    }

    /// Runs until `core` receives an upgrade response for `line`, or
    /// panics after `limit` cycles. Returns the arrival cycle.
    fn run_until_resp(&mut self, core: usize, line: u64, limit: u64) -> u64 {
        let deadline = self.now + limit;
        while self.now < deadline {
            self.tick();
            if let Some(&(_, msg)) = self.links[core].down.peek(self.now) {
                if let ParentMsg::UpgradeResp { line: l, .. } = msg {
                    if l == PhysAddr::new(line) {
                        let _ = self.links[core].down.pop(self.now);
                        return self.now;
                    }
                }
                // Drain other messages (downgrade reqs handled by tests
                // that need them).
                let _ = self.links[core].down.pop(self.now);
            }
        }
        panic!("no response for line {line:#x} within {limit} cycles");
    }
}

#[test]
fn miss_fills_from_dram_and_hits_after() {
    let mut rig = Rig::new(LlcConfig::paper_base(), 1);
    rig.request(0, 0x4_0000, MsiState::S);
    let t_miss = rig.run_until_resp(0, 0x4_0000, 400);
    // Miss cost at least the DRAM latency.
    assert!(t_miss >= 120, "miss too fast: {t_miss}");
    assert_eq!(rig.llc.stats.misses, 1);
    assert!(rig.llc.contains(PhysAddr::new(0x4_0000)));
    // Second access from the same child after eviction from its L1:
    // the L1 would have it, but model a re-request (e.g. I-cache).
    let start = rig.now;
    rig.request(0, 0x4_0000, MsiState::S);
    let t_hit = rig.run_until_resp(0, 0x4_0000, 400) - start;
    assert!(t_hit < 30, "hit too slow: {t_hit}");
    assert_eq!(rig.llc.stats.hits, 1);
}

#[test]
fn store_request_grants_m_and_tracks_directory() {
    let mut rig = Rig::new(LlcConfig::paper_base(), 1);
    rig.request(0, 0x8000, MsiState::M);
    rig.run_until_resp(0, 0x8000, 400);
    assert_eq!(
        rig.llc.probe_sharers(PhysAddr::new(0x8000)),
        1 << ChildId::l1d(0).index()
    );
}

#[test]
fn second_core_store_downgrades_first() {
    let mut rig = Rig::new(LlcConfig::paper_base(), 2);
    rig.request(0, 0x8000, MsiState::M);
    rig.run_until_resp(0, 0x8000, 400);
    // Core 1 wants the same line M: LLC must downgrade core 0 first.
    rig.request(1, 0x8000, MsiState::M);
    // Run until core 0 sees the downgrade request, then ack it.
    let mut acked = false;
    for _ in 0..200 {
        rig.tick();
        if let Some(&(child, ParentMsg::DowngradeReq { line, to })) =
            rig.links[0].down.peek(rig.now)
        {
            assert_eq!(line, PhysAddr::new(0x8000));
            assert_eq!(to, MsiState::I);
            let _ = rig.links[0].down.pop(rig.now);
            let ok = rig.links[0].up_resp.push(
                rig.now,
                DowngradeResp {
                    child,
                    line,
                    now: MsiState::I,
                    dirty: true,
                },
            );
            assert!(ok);
            acked = true;
            break;
        }
    }
    assert!(acked, "no downgrade request reached core 0");
    rig.run_until_resp(1, 0x8000, 400);
    assert_eq!(
        rig.llc.probe_sharers(PhysAddr::new(0x8000)),
        1 << ChildId::l1d(1).index()
    );
    assert_eq!(rig.llc.stats.downgrades_sent, 1);
}

#[test]
fn replacement_writes_back_dirty_victim() {
    // Fill all 16 ways of one set, dirty one line, then force a 17th.
    let mut rig = Rig::new(LlcConfig::paper_base(), 1);
    let sets = LlcConfig::paper_base().sets() as u64; // 1024
    let stride = sets * 64;
    // Use want=M then "write back" via voluntary eviction so the LLC
    // copy becomes dirty.
    rig.request(0, 0, MsiState::M);
    rig.run_until_resp(0, 0, 2000);
    let ok = rig.links[0].up_resp.push(
        rig.now,
        DowngradeResp {
            child: ChildId::l1d(0),
            line: PhysAddr::new(0),
            now: MsiState::I,
            dirty: true,
        },
    );
    assert!(ok);
    for w in 1..16u64 {
        rig.request(0, w * stride, MsiState::S);
        rig.run_until_resp(0, w * stride, 2000);
        // Evict from L1 so the directory shows no sharers.
        let ok = rig.links[0].up_resp.push(
            rig.now,
            DowngradeResp {
                child: ChildId::l1d(0),
                line: PhysAddr::new(w * stride),
                now: MsiState::I,
                dirty: false,
            },
        );
        assert!(ok);
    }
    // Let the evictions drain through the pipeline.
    for _ in 0..200 {
        rig.tick();
    }
    let wb_before = rig.dram.writes;
    rig.request(0, 16 * stride, MsiState::S);
    rig.run_until_resp(0, 16 * stride, 2000);
    assert_eq!(rig.llc.stats.evictions, 1);
    // One of the 16 victims was the dirty line only if it was chosen;
    // way 0 (the dirty one) is chosen by the lowest-way policy.
    assert_eq!(rig.dram.writes, wb_before + 1, "dirty victim written back");
    assert_eq!(rig.llc.stats.writebacks, 1);
}

#[test]
fn retry_bit_takes_single_cycle_dequeues() {
    let mut base = Rig::new(LlcConfig::paper_base(), 1);
    let mut cfg = LlcConfig::paper_base();
    cfg.dq = DqOrg::RetryBit;
    let mut secure = Rig::new(cfg, 1);
    for rig in [&mut base, &mut secure] {
        let sets = LlcConfig::paper_base().sets() as u64;
        let stride = sets * 64;
        rig.request(0, 0, MsiState::M);
        rig.run_until_resp(0, 0, 2000);
        let ok = rig.links[0].up_resp.push(
            rig.now,
            DowngradeResp {
                child: ChildId::l1d(0),
                line: PhysAddr::new(0),
                now: MsiState::I,
                dirty: true,
            },
        );
        assert!(ok);
        for w in 1..16u64 {
            rig.request(0, w * stride, MsiState::S);
            rig.run_until_resp(0, w * stride, 2000);
            let ok = rig.links[0].up_resp.push(
                rig.now,
                DowngradeResp {
                    child: ChildId::l1d(0),
                    line: PhysAddr::new(w * stride),
                    now: MsiState::I,
                    dirty: false,
                },
            );
            assert!(ok);
        }
        for _ in 0..200 {
            rig.tick();
        }
        rig.request(0, 16 * stride, MsiState::S);
        rig.run_until_resp(0, 16 * stride, 3000);
    }
    assert_eq!(base.llc.stats.dq_double_cycles, 1);
    assert_eq!(base.llc.stats.dq_retries, 0);
    assert_eq!(secure.llc.stats.dq_double_cycles, 0);
    assert_eq!(secure.llc.stats.dq_retries, 1);
}

#[test]
fn per_core_mshrs_isolate_capacity() {
    // Core 0 saturates its partition; core 1's single miss must still
    // be accepted immediately.
    let cfg = LlcConfig::paper_secure(2, 24); // 6 MSHRs per core
    let mut rig = Rig::new(cfg, 2);
    // 6 outstanding misses for core 0 (distinct region-0 lines).
    let mut big = CoreLink::new(16, LAT);
    std::mem::swap(&mut rig.links[0], &mut big);
    for i in 0..6u64 {
        rig.request(0, 0x10000 + i * 64, MsiState::S);
    }
    // A 7th core-0 request must wait for a free partition slot, but a
    // core-1 request sails through.
    rig.request(0, 0x20000, MsiState::S);
    rig.request(1, 0x100_0000 * 4, MsiState::S); // a different region
    rig.run_until_resp(1, 0x100_0000 * 4, 1000);
    // Core-0's 7th is still pending behind its partition.
    assert!(!rig.links[0].up_req.is_empty() || !rig.llc.quiescent());
}

#[test]
fn partitioned_index_maps_regions_to_disjoint_sets() {
    let cfg = LlcConfig::paper_secure(2, 24);
    let dram_cfg = DramConfig::paper();
    let llc = Llc::new(cfg, 2, RegionMap::new(&dram_cfg));
    // Addresses in region 0 and region 1 must land in disjoint sets
    // when the regions differ in their low 2 bits.
    let region_bytes = dram_cfg.region_bytes();
    let mut sets0 = std::collections::HashSet::new();
    let mut sets1 = std::collections::HashSet::new();
    for i in 0..4096u64 {
        sets0.insert(llc.set_index(PhysAddr::new(i * 64)));
        sets1.insert(llc.set_index(PhysAddr::new(region_bytes + i * 64)));
    }
    assert!(sets0.is_disjoint(&sets1));
    // Regions 4k and 4k+4 share low bits and thus sets (an enclave can
    // claim multiple aligned regions to grow its share).
    let s0 = llc.set_index(PhysAddr::new(0));
    let s4 = llc.set_index(PhysAddr::new(4 * region_bytes));
    assert_eq!(s0, s4);
}

#[test]
fn base_index_uses_low_bits() {
    let llc = Llc::new(
        LlcConfig::paper_base(),
        1,
        RegionMap::new(&DramConfig::paper()),
    );
    assert_eq!(llc.set_index(PhysAddr::new(0)), 0);
    assert_eq!(llc.set_index(PhysAddr::new(64)), 1);
    assert_eq!(llc.set_index(PhysAddr::new(1023 * 64)), 1023);
    assert_eq!(llc.set_index(PhysAddr::new(1024 * 64)), 0);
}

#[test]
fn round_robin_slot_gating() {
    // With RR arbitration and 2 cores, a core-1 message arriving in
    // core 0's slot waits exactly one cycle.
    let mut cfg = LlcConfig::paper_base();
    cfg.arbitration = LlcArbitration::RoundRobin;
    let mut rig = Rig::new(cfg, 2);
    rig.request(1, 0x40, MsiState::S);
    let t = rig.run_until_resp(1, 0x40, 500);
    // Now repeat, shifted by one cycle: latency must be identical
    // modulo the slot alignment — i.e. the response time depends only
    // on the request's phase, not on core 0's activity.
    let mut rig2 = Rig::new(cfg, 2);
    // Core 0 is busy with many requests.
    let mut big = CoreLink::new(16, LAT);
    std::mem::swap(&mut rig2.links[0], &mut big);
    for i in 0..6u64 {
        rig2.request(0, 0x8000 + 64 * i, MsiState::S);
    }
    rig2.request(1, 0x100_0000, MsiState::S);
    let t2 = rig2.run_until_resp(1, 0x100_0000, 500);
    assert_eq!(t, t2, "core 1 latency changed with core 0 load");
}

#[test]
fn secure_sizing_never_backpressures_dram() {
    // 1 core, 12 MSHRs (24/2): even a flood of misses with writebacks
    // keeps DRAM inflight <= 24.
    let mut cfg = LlcConfig::paper_secure(1, 24);
    cfg.indexing = LlcIndexing::Base;
    let mut rig = Rig::new(cfg, 1);
    let mut big = CoreLink::new(64, LAT);
    std::mem::swap(&mut rig.links[0], &mut big);
    for i in 0..64u64 {
        rig.request(0, 0x100000 + i * 64 * 1024, MsiState::M);
    }
    for _ in 0..5000 {
        rig.tick();
        let _ = rig.links[0].down.pop(rig.now);
        assert!(rig.dram.inflight() <= 24);
    }
    assert_eq!(rig.dram.backpressure_events, 0);
}
