//! Checkpoint serialization of the LLC and the core links.
//!
//! Two restore paths exist:
//!
//! - **verbatim** — the snapshot's [`LlcConfig`] equals the target's:
//!   every array, queue, and in-flight MSHR is restored exactly (the
//!   round-trip path used by resume and same-variant forks).
//! - **re-homing** — the configs differ (a warm state forked across
//!   variants, e.g. BASE → PART): the snapshot must be memory-quiescent
//!   (no in-flight MSHRs, pipeline, or queue entries), and resident lines
//!   are re-inserted under the *target's* set-index function. Lines that
//!   overflow a set's ways are dropped and returned so the caller can
//!   invalidate any L1 copies and keep the hierarchy inclusive.

use super::{Llc, LlcLine, MshrEntry, MshrState, PipeMsg};
use crate::config::{LlcConfig, LINE_SHIFT};
use crate::llc::CoreLink;
use crate::msi::{ChildId, DowngradeResp, MsiState};
use mi6_isa::PhysAddr;
use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};
use std::collections::VecDeque;

use super::AfterDowngrade;
use super::LlcStats;

impl SnapState for LlcLine {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.tag);
        w.bool(self.valid);
        w.bool(self.dirty);
        w.u32(self.sharers);
        w.bool(self.child_m);
        self.locked_by.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(LlcLine {
            tag: r.u64()?,
            valid: r.bool()?,
            dirty: r.bool()?,
            sharers: r.u32()?,
            child_m: r.bool()?,
            locked_by: SnapState::load(r)?,
        })
    }
}

impl SnapState for MshrState {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            MshrState::WaitPipe => w.u8(0),
            MshrState::InPipe => w.u8(1),
            MshrState::Blocked(on) => {
                w.u8(2);
                w.u32(on);
            }
            MshrState::WaitDowngrade => w.u8(3),
            MshrState::InDq => w.u8(4),
            MshrState::WaitDram => w.u8(5),
            MshrState::FillReady => w.u8(6),
            MshrState::InUq => w.u8(7),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => MshrState::WaitPipe,
            1 => MshrState::InPipe,
            2 => MshrState::Blocked(r.u32()?),
            3 => MshrState::WaitDowngrade,
            4 => MshrState::InDq,
            5 => MshrState::WaitDram,
            6 => MshrState::FillReady,
            7 => MshrState::InUq,
            other => {
                return Err(SnapError::BadValue {
                    what: format!("MSHR state tag {other}"),
                })
            }
        })
    }
}

impl SnapState for AfterDowngrade {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            AfterDowngrade::Grant => 0,
            AfterDowngrade::Replace => 1,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(AfterDowngrade::Grant),
            1 => Ok(AfterDowngrade::Replace),
            other => Err(SnapError::BadValue {
                what: format!("AfterDowngrade tag {other}"),
            }),
        }
    }
}

impl SnapState for MshrEntry {
    fn save(&self, w: &mut SnapWriter) {
        self.child.save(w);
        self.line.save(w);
        self.want.save(w);
        self.state.save(w);
        w.usize(self.set);
        w.usize(self.way);
        w.bool(self.needs_wb);
        self.victim_line.save(w);
        self.wait_line.save(w);
        w.u32(self.pending_downgrades);
        self.to_downgrade.save(w);
        self.after.save(w);
        w.bool(self.retry);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MshrEntry {
            child: ChildId::load(r)?,
            line: PhysAddr::load(r)?,
            want: MsiState::load(r)?,
            state: MshrState::load(r)?,
            set: r.usize()?,
            way: r.usize()?,
            needs_wb: r.bool()?,
            victim_line: PhysAddr::load(r)?,
            wait_line: PhysAddr::load(r)?,
            pending_downgrades: r.u32()?,
            to_downgrade: SnapState::load(r)?,
            after: AfterDowngrade::load(r)?,
            retry: r.bool()?,
            // Observability-only serve-level bit: not serialized (a
            // restored fill reads as an LLC serve; not worth a format
            // bump).
            from_dram: false,
        })
    }
}

impl SnapState for PipeMsg {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            PipeMsg::Req(i) => {
                w.u8(0);
                w.u32(i);
            }
            PipeMsg::Reentry(i) => {
                w.u8(1);
                w.u32(i);
            }
            PipeMsg::DownResp(resp) => {
                w.u8(2);
                resp.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => PipeMsg::Req(r.u32()?),
            1 => PipeMsg::Reentry(r.u32()?),
            2 => PipeMsg::DownResp(DowngradeResp::load(r)?),
            other => {
                return Err(SnapError::BadValue {
                    what: format!("PipeMsg tag {other}"),
                })
            }
        })
    }
}

impl SnapState for LlcStats {
    fn save(&self, w: &mut SnapWriter) {
        for v in [
            self.hits,
            self.misses,
            self.evictions,
            self.writebacks,
            self.downgrades_sent,
            self.arb_wait_cycles,
            self.conflicts,
            self.dq_retries,
            self.dq_double_cycles,
        ] {
            w.u64(v);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(LlcStats {
            hits: r.u64()?,
            misses: r.u64()?,
            evictions: r.u64()?,
            writebacks: r.u64()?,
            downgrades_sent: r.u64()?,
            arb_wait_cycles: r.u64()?,
            conflicts: r.u64()?,
            dq_retries: r.u64()?,
            dq_double_cycles: r.u64()?,
        })
    }
}

impl SnapState for CoreLink {
    fn save(&self, w: &mut SnapWriter) {
        self.up_req.save(w);
        self.up_resp.save(w);
        self.down.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CoreLink {
            up_req: SnapState::load(r)?,
            up_resp: SnapState::load(r)?,
            down: SnapState::load(r)?,
        })
    }
}

impl CoreLink {
    /// Whether all three FIFOs are empty.
    pub fn is_empty(&self) -> bool {
        self.up_req.is_empty() && self.up_resp.is_empty() && self.down.is_empty()
    }
}

impl Llc {
    /// Serializes the LLC: its configuration (for restore-time matching),
    /// the directory arrays, MSHRs, the cache-access pipeline, and every
    /// queue and counter.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.cfg.save(w);
        w.usize(self.sets.len());
        w.usize(self.cfg.ways);
        for set in &self.sets {
            for line in set {
                line.save(w);
            }
        }
        self.mshrs.save(w);
        self.pipe.save(w);
        self.uqs.save(w);
        self.dq.save(w);
        w.u64(self.dq_port_busy_until);
        w.usize(self.downgrade_scan);
        self.stats.save(w);
    }

    /// Restores state saved by [`Llc::save_state`].
    ///
    /// Returns the lines that had to be *dropped* during a cross-config
    /// re-home (empty on the verbatim path); the caller must invalidate
    /// those lines in the L1s to preserve inclusivity.
    ///
    /// # Errors
    ///
    /// [`SnapError::ConfigMismatch`] when geometry (sets × ways) differs;
    /// [`SnapError::NotQuiescent`] when configs differ and the snapshot
    /// still has in-flight LLC state.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<Vec<PhysAddr>, SnapError> {
        let snap_cfg = LlcConfig::load(r)?;
        let (sets, ways) = (r.usize()?, r.usize()?);
        if sets != self.sets.len() || ways != self.cfg.ways {
            return Err(SnapError::ConfigMismatch {
                what: format!(
                    "LLC geometry {sets} sets x {ways} ways vs {} x {}",
                    self.sets.len(),
                    self.cfg.ways
                ),
            });
        }
        let mut lines = vec![vec![LlcLine::default(); ways]; sets];
        for set in &mut lines {
            for line in set.iter_mut() {
                *line = LlcLine::load(r)?;
            }
        }
        let mshrs: Vec<Option<MshrEntry>> = SnapState::load(r)?;
        let pipe: VecDeque<(u64, PipeMsg)> = SnapState::load(r)?;
        let uqs: Vec<VecDeque<u32>> = SnapState::load(r)?;
        let dq: VecDeque<u32> = SnapState::load(r)?;
        let dq_port_busy_until = r.u64()?;
        let downgrade_scan = r.usize()?;
        let stats = LlcStats::load(r)?;

        if snap_cfg == self.cfg {
            if mshrs.len() != self.mshrs.len() || uqs.len() != self.uqs.len() {
                return Err(SnapError::BadValue {
                    what: "LLC MSHR/UQ count does not match its own configuration".into(),
                });
            }
            self.sets = lines;
            self.mshrs = mshrs;
            self.pipe = pipe;
            self.uqs = uqs;
            self.dq = dq;
            self.dq_port_busy_until = dq_port_busy_until;
            self.downgrade_scan = downgrade_scan;
            self.stats = stats;
            // The dirty counters (`live_mshrs`, `wait_pipe`, ...) are
            // derived state: recompute them rather than serialize them
            // (the snapshot format is unchanged). Observability counters
            // are runtime-only and do not survive a reload.
            self.recompute_derived();
            if let Some(obs) = &mut self.obs {
                obs.reset();
            }
            return Ok(Vec::new());
        }

        // Cross-config fork: only a quiescent LLC can change organization.
        let inflight = mshrs.iter().any(Option::is_some)
            || !pipe.is_empty()
            || !dq.is_empty()
            || uqs.iter().any(|q| !q.is_empty());
        if inflight {
            return Err(SnapError::NotQuiescent {
                what: "LLC MSHRs/pipeline/queues".into(),
            });
        }
        for m in &mut self.mshrs {
            *m = None;
        }
        self.pipe.clear();
        self.dq.clear();
        for q in &mut self.uqs {
            q.clear();
        }
        // Everything in flight is gone: all derived counters are zero.
        self.recompute_derived();
        if let Some(obs) = &mut self.obs {
            obs.reset();
        }
        self.dq_port_busy_until = dq_port_busy_until;
        self.downgrade_scan = 0;
        self.stats = stats;

        let mut dropped = Vec::new();
        if snap_cfg.indexing == self.cfg.indexing {
            self.sets = lines;
        } else {
            // Re-home every resident line under the target index function.
            for set in &mut self.sets {
                set.fill(LlcLine::default());
            }
            for line in lines.into_iter().flatten() {
                if !line.valid {
                    continue;
                }
                let addr = PhysAddr::new(line.tag << LINE_SHIFT);
                let set = self.set_index(addr);
                match self.sets[set].iter_mut().find(|l| !l.valid) {
                    Some(slot) => {
                        *slot = LlcLine {
                            locked_by: None,
                            ..line
                        }
                    }
                    None => dropped.push(addr),
                }
            }
        }
        Ok(dropped)
    }
}
