//! The shared last-level cache (LLC).
//!
//! This module implements both LLC microarchitectures from the paper:
//!
//! - **Figure 2 (RiscyOO baseline)**: a shared MSHR pool, a single
//!   upgrade-response queue (UQ), a single Downgrade-L1 logic scanning all
//!   MSHRs, a DQ whose dequeue blocks one extra cycle when an entry sends
//!   both a writeback and a read, and a two-level entry mux with fixed
//!   priority — every one of which Section 5.4.2 identifies as a minor
//!   timing leak.
//! - **Figure 3 (MI6)**: per-core MSHR partitions, per-core merge followed
//!   by a strict round-robin arbiter at the cache-access-pipeline entry,
//!   per-core split UQs, duplicated Downgrade-L1 logic per partition, and
//!   the DQ retry-bit scheme making every dequeue take exactly one cycle.
//!
//! Which behaviour is active is selected field-by-field in [`LlcConfig`],
//! so the evaluation variants (PART / MISS / ARB) and ablations can toggle
//! each mechanism independently.
//!
//! ### Structure
//!
//! Every incoming message — an L1 upgrade request, an L1 downgrade
//! response, or a DRAM response — passes through the cache-access pipeline
//! (latency [`LlcConfig::pipeline_latency`], one entry per cycle, never
//! backpressured) and is handled at the Process stage. Upgrade requests
//! reserve an MSHR *before* entering the pipeline; DRAM responses are
//! buffered in their MSHR, so neither ever backpressures the pipeline
//! (paper Section 5.4.1).

use crate::config::{
    DowngradeOrg, DqOrg, LlcArbitration, LlcConfig, LlcIndexing, MshrOrg, UqOrg, LINE_SHIFT,
};
use crate::dram::{Dram, DramReq};
use crate::link::DelayFifo;
use crate::msi::{ChildId, DowngradeResp, MsiState, ParentMsg, UpgradeReq};
use crate::obs::MemObs;
use crate::region::RegionMap;
use mi6_isa::PhysAddr;
use std::collections::VecDeque;

mod arbiter;
mod mshr;
mod pipeline;
mod queues;
mod snapshot;
#[cfg(test)]
mod tests;

/// A message admitted into the cache-access pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PipeMsg {
    /// Initial processing of an upgrade request (MSHR index).
    Req(u32),
    /// An MSHR re-entering: a buffered DRAM fill, or a retry-bit re-entry.
    Reentry(u32),
    /// An L1 downgrade response (ack or voluntary eviction).
    DownResp(DowngradeResp),
}

/// MSHR life-cycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MshrState {
    /// Waiting for a pipeline entry slot.
    WaitPipe,
    /// Travelling through the cache-access pipeline.
    InPipe,
    /// Blocked on another MSHR (same line or no free way); index recorded.
    Blocked(u32),
    /// Waiting for child downgrade responses.
    WaitDowngrade,
    /// Queued in DQ (DRAM request pending).
    InDq,
    /// DRAM read outstanding.
    WaitDram,
    /// DRAM data buffered in the entry; waiting to re-enter the pipeline.
    FillReady,
    /// Response queued in UQ.
    InUq,
}

/// What the MSHR is trying to do once pending downgrades complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AfterDowngrade {
    /// Grant the request on the already-present line.
    Grant,
    /// Proceed with the replacement of the victim way.
    Replace,
}

#[derive(Clone, Debug)]
struct MshrEntry {
    child: ChildId,
    line: PhysAddr,
    want: MsiState,
    state: MshrState,
    set: usize,
    way: usize,
    /// Replacement writeback still owed to DRAM.
    needs_wb: bool,
    victim_line: PhysAddr,
    /// The line whose downgrade we are waiting on (request line for a
    /// grant, victim line for a replacement).
    wait_line: PhysAddr,
    /// Children we still expect a downgrade response from (bitmap).
    pending_downgrades: u32,
    /// Downgrade requests not yet sent (child, line, to).
    to_downgrade: Vec<(ChildId, PhysAddr, MsiState)>,
    after: AfterDowngrade,
    /// MI6 retry bit (Section 5.4.3): the entry re-enters the pipeline
    /// after sending only the writeback.
    retry: bool,
    /// Whether the request was filled from DRAM. Observability-only
    /// (CPI-stack serve levels): carried to the child in the upgrade
    /// response, never read by timing logic, not serialized.
    from_dram: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct LlcLine {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Children holding the line (bitmap by `ChildId::index`).
    sharers: u32,
    /// Exactly one sharer holds M.
    child_m: bool,
    /// Way reserved by an in-flight MSHR.
    locked_by: Option<u32>,
}

/// Counters exported by the LLC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Upgrade requests that hit.
    pub hits: u64,
    /// Upgrade requests that missed (DRAM read issued).
    pub misses: u64,
    /// LLC line evictions (replacements).
    pub evictions: u64,
    /// Writebacks sent to DRAM.
    pub writebacks: u64,
    /// Downgrade requests sent to children.
    pub downgrades_sent: u64,
    /// Cycles an admissible message waited because the round-robin slot
    /// belonged to another core.
    pub arb_wait_cycles: u64,
    /// Messages blocked at Process on a same-line or same-set conflict.
    pub conflicts: u64,
    /// Retry-bit re-entries (MI6 DQ scheme).
    pub dq_retries: u64,
    /// Extra DQ port cycles consumed by two-cycle dequeues (baseline).
    pub dq_double_cycles: u64,
}

/// Per-core link endpoints as seen by the LLC.
///
/// Each core has one link with three FIFOs (paper Figure 1): upgrade
/// requests up, downgrade responses up, and parent messages down. The down
/// FIFO carries the destination child so the core side can route to L1I or
/// L1D.
#[derive(Debug)]
pub struct CoreLink {
    /// L1 → LLC upgrade requests.
    pub up_req: DelayFifo<UpgradeReq>,
    /// L1 → LLC downgrade responses / eviction notifications.
    pub up_resp: DelayFifo<DowngradeResp>,
    /// LLC → L1 upgrade responses and downgrade requests.
    pub down: DelayFifo<(ChildId, ParentMsg)>,
}

impl CoreLink {
    /// Creates a link with the given FIFO capacity and hop latency.
    pub fn new(capacity: usize, latency: u32) -> CoreLink {
        CoreLink {
            up_req: DelayFifo::new(capacity, latency),
            up_resp: DelayFifo::new(capacity, latency),
            down: DelayFifo::new(capacity, latency),
        }
    }
}

/// The last-level cache with its MSHRs, pipeline, queues, and directory.
#[derive(Debug)]
pub struct Llc {
    cfg: LlcConfig,
    cores: usize,
    region_map: RegionMap,
    sets: Vec<Vec<LlcLine>>,
    mshrs: Vec<Option<MshrEntry>>,
    /// (exit cycle, message); one admission per cycle keeps this ordered.
    pipe: VecDeque<(u64, PipeMsg)>,
    /// Upgrade-response queues: one (shared) or one per core.
    uqs: Vec<VecDeque<u32>>,
    dq: VecDeque<u32>,
    /// Baseline two-cycle dequeue: DQ port busy until this cycle.
    dq_port_busy_until: u64,
    /// Rotating scan start for the single Downgrade-L1 logic.
    downgrade_scan: usize,
    set_bits: u32,
    /// Live entries in `mshrs` (derived; lets the per-cycle tick skip the
    /// MSHR scans entirely while the LLC is idle — recomputed on restore,
    /// never serialized).
    live_mshrs: usize,
    /// MSHRs in `WaitPipe` (derived, like `live_mshrs`): gates the
    /// arbiter's request scans.
    wait_pipe: usize,
    /// MSHRs in `FillReady` (derived): gates the arbiter's fill scans.
    fill_ready: usize,
    /// MSHRs in `WaitDowngrade` with unsent downgrade requests (derived):
    /// gates `send_downgrades` entirely.
    downgrades_pending: usize,
    /// Total entries across all UQs (derived): gates `dequeue_uq`.
    uq_total: usize,
    /// Reusable per-cycle port-usage buffer (host-side scratch only).
    port_scratch: Vec<bool>,
    /// Observability counters, attached only while metrics sampling is on
    /// (runtime-only: never serialized, reset on restore).
    pub obs: Option<Box<MemObs>>,
    /// Exported statistics.
    pub stats: LlcStats,
}

impl Llc {
    /// Creates an empty LLC for `cores` cores.
    pub fn new(cfg: LlcConfig, cores: usize, region_map: RegionMap) -> Llc {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two());
        let n_mshrs = cfg.mshrs.total(cores);
        let n_uqs = match cfg.uq {
            UqOrg::Shared => 1,
            UqOrg::PerCore => cores,
        };
        Llc {
            cfg,
            cores,
            region_map,
            sets: vec![vec![LlcLine::default(); cfg.ways]; sets],
            mshrs: vec![None; n_mshrs],
            pipe: VecDeque::new(),
            uqs: vec![VecDeque::new(); n_uqs],
            dq: VecDeque::new(),
            dq_port_busy_until: 0,
            downgrade_scan: 0,
            set_bits: sets.trailing_zeros(),
            live_mshrs: 0,
            wait_pipe: 0,
            fill_ready: 0,
            downgrades_pending: 0,
            uq_total: 0,
            port_scratch: Vec::new(),
            obs: None,
            stats: LlcStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Computes the set index for a line address under the configured
    /// indexing function (paper Section 7.2: BASE uses `A[set_bits-1:0]`
    /// of the line index; PART replaces the top `region_bits` with the low
    /// bits of the DRAM-region ID).
    pub fn set_index(&self, line: PhysAddr) -> usize {
        let line_index = line.raw() >> LINE_SHIFT;
        match self.cfg.indexing {
            LlcIndexing::Base => (line_index & ((1 << self.set_bits) - 1)) as usize,
            LlcIndexing::Partitioned { region_bits } => {
                let low_bits = self.set_bits - region_bits;
                let region = self.region_map.region_of(line).0 as u64;
                let low = line_index & ((1 << low_bits) - 1);
                (((region & ((1 << region_bits) - 1)) << low_bits) | low) as usize
            }
        }
    }

    fn tag_of(&self, line: PhysAddr) -> u64 {
        line.raw() >> LINE_SHIFT
    }

    /// One LLC cycle. `links` is indexed by core. DRAM responses are
    /// collected, the Process stage runs, queues drain, new requests are
    /// accepted, and the entry arbiter admits at most one message.
    pub fn tick(&mut self, now: u64, links: &mut [CoreLink], dram: &mut Dram) {
        debug_assert_eq!(links.len(), self.cores);
        #[cfg(debug_assertions)]
        if now.is_multiple_of(1024) {
            self.debug_check_derived();
        }
        // DRAM responses: buffered into their MSHR, never backpressured.
        for resp in dram.tick(now) {
            let entry = self.mshrs[resp.tag as usize]
                .as_mut()
                .expect("DRAM response for a freed MSHR");
            debug_assert_eq!(entry.state, MshrState::WaitDram);
            debug_assert_eq!(entry.line, resp.line);
            entry.state = MshrState::FillReady;
            entry.from_dram = true;
            self.fill_ready += 1;
        }
        self.process_exit(now);
        // Each sub-tick below is gated by its dirty counter (inside the
        // respective method), so an idle or lightly loaded LLC touches
        // only the structures with pending work.
        if self.uq_total > 0 || self.downgrades_pending > 0 {
            // Reuse the port-usage buffer across cycles (no per-cycle
            // alloc).
            let mut port_used = std::mem::take(&mut self.port_scratch);
            port_used.clear();
            port_used.resize(self.cores, false);
            self.dequeue_uq(now, links, &mut port_used);
            self.send_downgrades(now, links, &mut port_used);
            self.port_scratch = port_used;
        }
        self.dequeue_dq(now, dram);
        self.accept_requests(now, links);
        self.arbitrate_entry(now, links);
    }

    /// The earliest future cycle at which [`Llc::tick`] could do any work,
    /// or `None` when it might act at `now` itself. `Some(u64::MAX)` means
    /// fully quiescent pending external input. Used by the event-driven
    /// idle-skip; new link traffic and DRAM completions are accounted
    /// separately by [`crate::MemSystem::next_event`].
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        // Any of these states drives per-cycle work (arbitration scans,
        // queue draining, downgrade sends — including the exact
        // `arb_wait_cycles` accounting): never skip through them.
        if self.wait_pipe > 0
            || self.fill_ready > 0
            || self.uq_total > 0
            || self.downgrades_pending > 0
        {
            return None;
        }
        let mut next = u64::MAX;
        // The pipeline exit processes its head when the head's exit cycle
        // arrives. (Blocked / downgrade-waiting / DRAM-waiting MSHRs are
        // passive: their wake-ups come from the pipeline, the links, or
        // DRAM, each bounded elsewhere.)
        if let Some(&(ready, _)) = self.pipe.front() {
            if ready <= now {
                return None;
            }
            next = next.min(ready);
        }
        // A non-empty DQ issues to DRAM as soon as its port frees up.
        if !self.dq.is_empty() {
            if self.dq_port_busy_until <= now {
                return None;
            }
            next = next.min(self.dq_port_busy_until);
        }
        Some(next)
    }

    /// Recomputes every derived counter from the authoritative structures
    /// — the single definition of what each counter means. Called after
    /// restore (the counters are never serialized) and by the periodic
    /// debug cross-check.
    pub(super) fn recompute_derived(&mut self) {
        self.live_mshrs = self.mshrs.iter().filter(|m| m.is_some()).count();
        self.wait_pipe = self
            .mshrs
            .iter()
            .flatten()
            .filter(|m| m.state == MshrState::WaitPipe)
            .count();
        self.fill_ready = self
            .mshrs
            .iter()
            .flatten()
            .filter(|m| m.state == MshrState::FillReady)
            .count();
        self.downgrades_pending = self
            .mshrs
            .iter()
            .flatten()
            .filter(|m| m.state == MshrState::WaitDowngrade && !m.to_downgrade.is_empty())
            .count();
        self.uq_total = self.uqs.iter().map(VecDeque::len).sum();
    }

    /// Panics unless the incrementally maintained counters match a
    /// from-scratch recount (debug builds, every 1024 cycles — the same
    /// cadence as the core's LSQ-index cross-check).
    #[cfg(debug_assertions)]
    fn debug_check_derived(&self) {
        let counted = (
            self.mshrs.iter().filter(|m| m.is_some()).count(),
            self.mshrs
                .iter()
                .flatten()
                .filter(|m| m.state == MshrState::WaitPipe)
                .count(),
            self.mshrs
                .iter()
                .flatten()
                .filter(|m| m.state == MshrState::FillReady)
                .count(),
            self.mshrs
                .iter()
                .flatten()
                .filter(|m| m.state == MshrState::WaitDowngrade && !m.to_downgrade.is_empty())
                .count(),
            self.uqs.iter().map(VecDeque::len).sum::<usize>(),
        );
        let live = (
            self.live_mshrs,
            self.wait_pipe,
            self.fill_ready,
            self.downgrades_pending,
            self.uq_total,
        );
        assert_eq!(
            live, counted,
            "LLC derived counters diverged (live vs recount: \
             live_mshrs, wait_pipe, fill_ready, downgrades_pending, uq_total)"
        );
    }

    /// Applies an L1 purge-flush invalidation directly to the directory.
    ///
    /// During a purge the core is stalled and, under MI6's invariants, no
    /// other traffic from that core is in flight, so the notification is
    /// applied out of band rather than through the cache-access pipeline;
    /// the paper's 512-cycle flush figure (Section 7.1) counts the L1
    /// sweep, with the LLC absorbing one eviction per cycle in parallel.
    pub fn flush_notify(&mut self, child: ChildId, line: PhysAddr, dirty: bool) {
        let set = self.set_index(line);
        let tag = self.tag_of(line);
        if let Some(way) = self.sets[set].iter().position(|l| l.valid && l.tag == tag) {
            let entry = &mut self.sets[set][way];
            entry.sharers &= !(1u32 << child.index());
            if entry.sharers == 0 {
                entry.child_m = false;
            }
            if dirty {
                entry.dirty = true;
            }
        }
    }

    /// Per-core count of live MSHR entries, written into `out`
    /// (observability probe; `out` is resized to the core count).
    pub fn mshr_occupancy(&self, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.cores, 0);
        for m in self.mshrs.iter().flatten() {
            out[m.child.core()] += 1;
        }
    }

    /// The MSHR quota visible to one core: its partition size under
    /// per-core MSHRs, otherwise the whole (shared or banked) pool.
    pub fn mshr_quota_per_core(&self) -> u64 {
        match self.cfg.mshrs {
            MshrOrg::PerCore { per_core } => per_core as u64,
            MshrOrg::Shared { total } | MshrOrg::Banked { total, .. } => total as u64,
        }
    }

    /// Depths of the internal queues as (cache-access pipeline, DQ,
    /// total UQ entries).
    pub fn queue_depths(&self) -> (usize, usize, usize) {
        (self.pipe.len(), self.dq.len(), self.uq_total)
    }

    /// Whether the LLC has no in-flight work (test aid).
    pub fn quiescent(&self) -> bool {
        self.mshrs.iter().all(Option::is_none)
            && self.pipe.is_empty()
            && self.dq.is_empty()
            && self.uqs.iter().all(VecDeque::is_empty)
    }

    /// Directory probe for tests: the set of children holding a line.
    pub fn probe_sharers(&self, line: PhysAddr) -> u32 {
        let set = self.set_index(line);
        let tag = self.tag_of(line);
        self.sets[set]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.sharers)
            .unwrap_or(0)
    }

    /// Whether a line is resident in the LLC (test aid).
    pub fn contains(&self, line: PhysAddr) -> bool {
        let set = self.set_index(line);
        let tag = self.tag_of(line);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }
}
