//! The Process stage at the cache-access pipeline exit: directory
//! updates from downgrade responses, hit/miss handling with way locking
//! and same-line conflict blocking, replacements, and DRAM-fill
//! re-entries.

use super::*;

impl Llc {
    /// Process stage at the pipeline exit: at most one message per cycle.
    pub(super) fn process_exit(&mut self, now: u64) {
        let Some(&(ready, msg)) = self.pipe.front() else {
            return;
        };
        if ready > now {
            return;
        }
        self.pipe.pop_front();
        match msg {
            PipeMsg::DownResp(resp) => self.process_down_resp(resp),
            PipeMsg::Req(m) => self.process_request(m),
            PipeMsg::Reentry(m) => self.process_reentry(m),
        }
    }

    pub(super) fn process_down_resp(&mut self, resp: DowngradeResp) {
        // Update the directory.
        let set = self.set_index(resp.line);
        let tag = self.tag_of(resp.line);
        if let Some(way) = self.sets[set].iter().position(|l| l.valid && l.tag == tag) {
            let line = &mut self.sets[set][way];
            let bit = 1u32 << resp.child.index();
            if resp.now == MsiState::I {
                line.sharers &= !bit;
            }
            // The M owner is always the sole sharer, so after its
            // downgrade either the sharer set is empty (to I) or it was
            // demoted in place (to S).
            if line.child_m && (line.sharers == 0 || resp.now == MsiState::S) {
                line.child_m = false;
            }
            if resp.dirty {
                line.dirty = true;
            }
        }
        // Wake MSHRs waiting on this downgrade (request or voluntary).
        let bit = 1u32 << resp.child.index();
        let mut to_continue = Vec::new();
        let mut emptied = 0;
        for (i, slot) in self.mshrs.iter_mut().enumerate() {
            if let Some(m) = slot {
                if m.state == MshrState::WaitDowngrade
                    && m.wait_line == resp.line
                    && m.pending_downgrades & bit != 0
                {
                    m.pending_downgrades &= !bit;
                    // Also cancel an unsent downgrade to this child (a
                    // voluntary eviction can answer a request we never
                    // sent — that empties `to_downgrade` here, not in
                    // `try_send_one_downgrade`).
                    let had_unsent = !m.to_downgrade.is_empty();
                    m.to_downgrade.retain(|&(c, _, _)| c != resp.child);
                    if had_unsent && m.to_downgrade.is_empty() {
                        emptied += 1;
                    }
                    if m.pending_downgrades == 0 {
                        to_continue.push(i as u32);
                    }
                }
            }
        }
        self.downgrades_pending -= emptied;
        for m in to_continue {
            self.after_downgrades(m);
        }
    }

    pub(super) fn after_downgrades(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        match entry.after {
            AfterDowngrade::Grant => self.grant(m),
            AfterDowngrade::Replace => {
                let (set, way) = (entry.set, entry.way);
                let line = &mut self.sets[set][way];
                debug_assert!(line.sharers == 0, "victim still shared");
                let dirty = line.dirty;
                let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                if dirty {
                    entry.needs_wb = true;
                    self.stats.writebacks += 1;
                }
                self.stats.evictions += 1;
                // Invalidate the victim; the way stays locked for the fill.
                let line = &mut self.sets[set][way];
                line.valid = false;
                line.dirty = false;
                line.child_m = false;
                self.enqueue_dq(m);
            }
        }
    }

    /// Grants the request: the line is present and all conflicting child
    /// copies have been downgraded. Updates the directory and queues the
    /// upgrade response.
    pub(super) fn grant(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        let (set, way, child, want) = (entry.set, entry.way, entry.child, entry.want);
        let line = &mut self.sets[set][way];
        debug_assert!(line.valid);
        let bit = 1u32 << child.index();
        match want {
            MsiState::S => {
                debug_assert!(!line.child_m || line.sharers == bit);
                line.sharers |= bit;
            }
            MsiState::M => {
                debug_assert!(line.sharers & !bit == 0, "other sharers remain");
                line.sharers = bit;
                line.child_m = true;
            }
            MsiState::I => unreachable!("no request downgrades itself"),
        }
        self.enqueue_uq(m);
    }

    /// Initial processing of an upgrade request at the Process stage.
    pub(super) fn process_request(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        let (line_addr, set, child, want) = (entry.line, entry.set, entry.child, entry.want);
        let tag = self.tag_of(line_addr);

        // Conflict: another MSHR holds (or is ahead in line for) the same
        // line. Block on it when it already *owns* a transaction (passed
        // Process), or — to serialize two not-yet-processed same-line
        // entries without creating a blocking cycle — when it has the
        // lower MSHR index. Lower indices never block on higher
        // non-owning ones, so chains always terminate at an owning entry
        // or a processable one.
        let owning = |s: MshrState| {
            matches!(
                s,
                MshrState::WaitDowngrade
                    | MshrState::InDq
                    | MshrState::WaitDram
                    | MshrState::FillReady
                    | MshrState::InUq
            )
        };
        if let Some(other) = self.mshrs.iter().enumerate().position(|(i, o)| {
            i != m as usize
                && o.as_ref()
                    .is_some_and(|o| o.line == line_addr && (owning(o.state) || i < m as usize))
        }) {
            let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
            entry.state = MshrState::Blocked(other as u32);
            self.stats.conflicts += 1;
            return;
        }

        if let Some(way) = self.sets[set].iter().position(|l| l.valid && l.tag == tag) {
            // Hit. Check whether the way is locked by another MSHR's
            // replacement (shouldn't happen for a valid line, but a fill
            // in flight locks its way while invalid).
            if let Some(locker) = self.sets[set][way].locked_by {
                if locker != m {
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.state = MshrState::Blocked(locker);
                    self.stats.conflicts += 1;
                    return;
                }
            }
            self.stats.hits += 1;
            let line = &self.sets[set][way];
            let bit = 1u32 << child.index();
            // Which children must downgrade before we can grant?
            let mut to_downgrade = Vec::new();
            let conflicting = match want {
                MsiState::S => {
                    if line.child_m && line.sharers & !bit != 0 {
                        line.sharers & !bit
                    } else {
                        0
                    }
                }
                MsiState::M => line.sharers & !bit,
                MsiState::I => unreachable!(),
            };
            if conflicting != 0 {
                let to = if want == MsiState::M {
                    MsiState::I
                } else {
                    MsiState::S
                };
                for c in 0..32 {
                    if conflicting >> c & 1 != 0 {
                        to_downgrade.push((ChildId(c as u16), line_addr, to));
                    }
                }
                let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                entry.way = way;
                entry.state = MshrState::WaitDowngrade;
                entry.wait_line = line_addr;
                entry.pending_downgrades = conflicting;
                entry.to_downgrade = to_downgrade;
                entry.after = AfterDowngrade::Grant;
                self.downgrades_pending += 1;
                return;
            }
            let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
            entry.way = way;
            self.grant(m);
            return;
        }

        // Miss.
        self.stats.misses += 1;
        // Free (invalid, unlocked) way?
        if let Some(way) = self.sets[set]
            .iter()
            .position(|l| !l.valid && l.locked_by.is_none())
        {
            let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
            entry.way = way;
            self.sets[set][way].locked_by = Some(m);
            self.enqueue_dq(m);
            return;
        }
        // Replacement: pick an unlocked victim (lowest way; the LLC has no
        // replacement metadata worth modelling — RiscyOO uses pseudo-random
        // and the set-partitioning evaluation is insensitive to it).
        let Some(way) = self.sets[set].iter().position(|l| l.locked_by.is_none()) else {
            // Every way locked by in-flight fills: block on the first.
            let locker = self.sets[set][0].locked_by.expect("all locked");
            let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
            entry.state = MshrState::Blocked(locker);
            self.stats.conflicts += 1;
            return;
        };
        let victim = self.sets[set][way];
        let victim_line = PhysAddr::new(
            // Reconstruct the victim address from its tag (the tag is the
            // full line index).
            victim.tag << LINE_SHIFT,
        );
        self.sets[set][way].locked_by = Some(m);
        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
        entry.way = way;
        entry.victim_line = victim_line;
        if victim.sharers != 0 {
            // Inclusive: children must drop the victim first.
            let mut to_downgrade = Vec::new();
            for c in 0..32 {
                if victim.sharers >> c & 1 != 0 {
                    to_downgrade.push((ChildId(c as u16), victim_line, MsiState::I));
                }
            }
            entry.state = MshrState::WaitDowngrade;
            entry.wait_line = victim_line;
            entry.pending_downgrades = victim.sharers;
            entry.to_downgrade = to_downgrade;
            entry.after = AfterDowngrade::Replace;
            self.downgrades_pending += 1;
        } else {
            entry.after = AfterDowngrade::Replace;
            entry.pending_downgrades = 0;
            self.after_downgrades(m);
        }
    }

    /// Re-entry processing: a DRAM fill completing, or a retry-bit entry
    /// coming back as a pure miss.
    pub(super) fn process_reentry(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
        if entry.retry {
            // Retry-bit path: the writeback has been sent; re-issue as a
            // pure miss (the way is still locked for us).
            entry.retry = false;
            entry.needs_wb = false;
            self.stats.dq_retries += 1;
            self.enqueue_dq(m);
            return;
        }
        // Fill: install the line and grant.
        let (set, way, child, want, line_addr) =
            (entry.set, entry.way, entry.child, entry.want, entry.line);
        let tag = self.tag_of(line_addr);
        let line = &mut self.sets[set][way];
        debug_assert_eq!(line.locked_by, Some(m));
        line.tag = tag;
        line.valid = true;
        line.dirty = false;
        line.sharers = 1u32 << child.index();
        line.child_m = want == MsiState::M;
        self.enqueue_uq(m);
    }
}
