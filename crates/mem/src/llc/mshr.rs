//! MSHR management: per-organization allocation (shared pool, banked,
//! per-core partitions), request acceptance from the per-core links, and
//! entry retirement with blocked-entry wakeup.

use super::*;

impl Llc {
    /// MSHR bank for a set index (MISS model).
    pub(super) fn bank_of(&self, set: usize, banks: usize) -> usize {
        set & (banks - 1)
    }

    pub(super) fn find_free_mshr(&self, core: usize, set: usize) -> Option<usize> {
        match self.cfg.mshrs {
            MshrOrg::Shared { .. } => self.mshrs.iter().position(Option::is_none),
            MshrOrg::PerCore { per_core } => {
                let base = core * per_core;
                (base..base + per_core).find(|&i| self.mshrs[i].is_none())
            }
            MshrOrg::Banked { total, banks } => {
                // Entries are striped across banks: entry i belongs to bank
                // i % banks. A request may only use an entry of its bank.
                let bank = self.bank_of(set, banks);
                (0..total).find(|&i| i % banks == bank && self.mshrs[i].is_none())
            }
        }
    }

    /// Accepts upgrade requests from the per-core links into MSHRs.
    pub(super) fn accept_requests(&mut self, now: u64, links: &mut [CoreLink]) {
        for (core, link) in links.iter_mut().enumerate() {
            // Head-of-line: only the head request of each core's FIFO is a
            // candidate; if it cannot allocate, the FIFO stalls.
            let Some(req) = link.up_req.peek(now).copied() else {
                continue;
            };
            let set = self.set_index(req.line);
            let Some(idx) = self.find_free_mshr(core, set) else {
                // In the banked (MISS) model a full target bank stalls the
                // whole structure: stop accepting from every core.
                if matches!(self.cfg.mshrs, MshrOrg::Banked { .. }) {
                    break;
                }
                continue;
            };
            let popped = link.up_req.pop(now);
            debug_assert!(popped.is_some());
            self.live_mshrs += 1;
            self.wait_pipe += 1;
            self.mshrs[idx] = Some(MshrEntry {
                child: req.child,
                line: req.line,
                want: req.want,
                state: MshrState::WaitPipe,
                set,
                way: usize::MAX,
                needs_wb: false,
                victim_line: PhysAddr::new(0),
                wait_line: PhysAddr::new(0),
                pending_downgrades: 0,
                to_downgrade: Vec::new(),
                after: AfterDowngrade::Grant,
                retry: false,
                from_dram: false,
            });
        }
    }

    /// Whether `core`'s head upgrade request is stalled because its MSHR
    /// allocation domain (per-core quota or target bank) has no free
    /// entry. Read-only CPI-stack probe: mirrors the allocation test
    /// [`Llc::accept_requests`] just ran for this cycle.
    pub(crate) fn quota_denied(&self, now: u64, core: usize, link: &CoreLink) -> bool {
        let Some(req) = link.up_req.peek(now) else {
            return false;
        };
        let set = self.set_index(req.line);
        self.find_free_mshr(core, set).is_none()
    }

    pub(super) fn free_mshr(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].take().expect("double free");
        self.live_mshrs -= 1;
        if entry.way != usize::MAX {
            let line = &mut self.sets[entry.set][entry.way];
            if line.locked_by == Some(m) {
                line.locked_by = None;
            }
        }
        // Wake MSHRs blocked on us.
        let mut woken = 0;
        for o in self.mshrs.iter_mut().flatten() {
            if o.state == MshrState::Blocked(m) {
                o.state = MshrState::WaitPipe;
                woken += 1;
            }
        }
        self.wait_pipe += woken;
    }
}
