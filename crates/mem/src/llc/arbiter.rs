//! Pipeline-entry arbitration: the insecure two-level fixed-priority mux
//! (Figure 2) vs MI6's strict per-core round-robin (Figure 3, Section
//! 5.4.3), plus the Downgrade-L1 request logic (single scan or duplicated
//! per partition).

use super::*;

impl Llc {
    /// Picks at most one message to admit into the cache-access pipeline.
    pub(super) fn arbitrate_entry(&mut self, now: u64, links: &mut [CoreLink]) {
        let pick_for_core = |llc: &Llc, links: &mut [CoreLink], core: usize| -> Option<PipeMsg> {
            // Local priority: downgrade responses, then buffered fills /
            // retries, then fresh upgrade requests.
            if links[core].up_resp.peek(now).is_some() {
                let resp = links[core].up_resp.pop(now).expect("peeked");
                return Some(PipeMsg::DownResp(resp));
            }
            if llc.fill_ready > 0 {
                for (i, slot) in llc.mshrs.iter().enumerate() {
                    if let Some(m) = slot {
                        if m.child.core() == core && m.state == MshrState::FillReady {
                            return Some(PipeMsg::Reentry(i as u32));
                        }
                    }
                }
            }
            if llc.wait_pipe > 0 {
                for (i, slot) in llc.mshrs.iter().enumerate() {
                    if let Some(m) = slot {
                        if m.child.core() == core && m.state == MshrState::WaitPipe {
                            return Some(if m.retry {
                                PipeMsg::Reentry(i as u32)
                            } else {
                                PipeMsg::Req(i as u32)
                            });
                        }
                    }
                }
            }
            None
        };

        let msg = match self.cfg.arbitration {
            LlcArbitration::RoundRobin => {
                // Cycle T belongs to core T % N, even if that core is idle.
                let turn = (now % self.cores as u64) as usize;
                let chosen = pick_for_core(self, links, turn);
                if chosen.is_none() {
                    // Count cycles where *some other* core had a message
                    // but the slot went idle — the arbiter's latency cost.
                    let someone_waiting = (0..self.cores).any(|c| {
                        c != turn
                            && (links[c].up_resp.peek(now).is_some()
                                || (self.wait_pipe + self.fill_ready > 0
                                    && self.mshrs.iter().flatten().any(|m| {
                                        m.child.core() == c
                                            && matches!(
                                                m.state,
                                                MshrState::WaitPipe | MshrState::FillReady
                                            )
                                    })))
                    });
                    if someone_waiting {
                        self.stats.arb_wait_cycles += 1;
                    }
                }
                chosen
            }
            LlcArbitration::Base => {
                // Two-level mux: merge by type, fixed priority across types
                // (downgrade responses > fills > requests), fixed child
                // order within a type. Admits whenever anything is pending.
                let mut chosen = None;
                for link in links.iter_mut() {
                    if link.up_resp.peek(now).is_some() {
                        chosen = Some(PipeMsg::DownResp(link.up_resp.pop(now).expect("peeked")));
                        break;
                    }
                }
                if chosen.is_none() && self.fill_ready > 0 {
                    chosen = self
                        .mshrs
                        .iter()
                        .position(|m| m.as_ref().is_some_and(|m| m.state == MshrState::FillReady))
                        .map(|i| PipeMsg::Reentry(i as u32));
                }
                if chosen.is_none() && self.wait_pipe > 0 {
                    chosen = self.mshrs.iter().enumerate().find_map(|(i, m)| {
                        m.as_ref().and_then(|m| {
                            (m.state == MshrState::WaitPipe).then_some(if m.retry {
                                PipeMsg::Reentry(i as u32)
                            } else {
                                PipeMsg::Req(i as u32)
                            })
                        })
                    });
                }
                chosen
            }
        };
        if self.obs.is_some() {
            self.note_arbitration(now, links, msg);
        }
        if let Some(msg) = msg {
            if let PipeMsg::Req(i) | PipeMsg::Reentry(i) = msg {
                let entry = self.mshrs[i as usize].as_mut().expect("live MSHR");
                let was = entry.state;
                entry.state = MshrState::InPipe;
                match was {
                    MshrState::WaitPipe => self.wait_pipe -= 1,
                    MshrState::FillReady => self.fill_ready -= 1,
                    other => debug_assert!(false, "admitted MSHR from state {other:?}"),
                }
            }
            self.pipe
                .push_back((now + self.cfg.pipeline_latency as u64, msg));
        }
    }

    /// Whether `core` has an admissible message waiting while the
    /// round-robin arbiter's slot belongs to another core. Read-only
    /// CPI-stack probe (same waiting predicate as `note_arbitration`);
    /// always false under the baseline mux, which admits whenever
    /// anything is pending.
    pub(crate) fn arb_denied(&self, now: u64, core: usize, link: &CoreLink) -> bool {
        if !matches!(self.cfg.arbitration, LlcArbitration::RoundRobin) {
            return false;
        }
        if (now % self.cores as u64) as usize == core {
            return false;
        }
        link.up_resp.peek(now).is_some()
            || (self.wait_pipe + self.fill_ready > 0
                && self.mshrs.iter().flatten().any(|m| {
                    m.child.core() == core
                        && matches!(m.state, MshrState::WaitPipe | MshrState::FillReady)
                }))
    }

    /// Attributes this cycle's arbitration outcome per core: one grant
    /// for the admitted message's core, one denial for every other core
    /// that had an admissible message waiting. Pure measurement — only
    /// called while observability is attached, and never alters timing.
    fn note_arbitration(&mut self, now: u64, links: &[CoreLink], msg: Option<PipeMsg>) {
        let granted = msg.map(|m| match m {
            PipeMsg::Req(i) | PipeMsg::Reentry(i) => self.mshrs[i as usize]
                .as_ref()
                .expect("live MSHR")
                .child
                .core(),
            PipeMsg::DownResp(resp) => resp.child.core(),
        });
        let obs = self.obs.as_deref_mut().expect("caller checked");
        if let Some(core) = granted {
            obs.arb_grants[core] += 1;
        }
        for (c, link) in links.iter().enumerate() {
            if Some(c) == granted {
                continue;
            }
            let waiting = link.up_resp.peek(now).is_some()
                || self.mshrs.iter().flatten().any(|m| {
                    m.child.core() == c
                        && matches!(m.state, MshrState::WaitPipe | MshrState::FillReady)
                });
            if waiting {
                obs.arb_denials[c] += 1;
            }
        }
    }

    /// The Downgrade-L1 logic: sends downgrade requests to children over
    /// the remaining port budget.
    pub(super) fn send_downgrades(
        &mut self,
        now: u64,
        links: &mut [CoreLink],
        port_used: &mut [bool],
    ) {
        if self.downgrades_pending == 0 {
            return; // no MSHR has an unsent downgrade request
        }
        let n = self.mshrs.len();
        match self.cfg.downgrade {
            DowngradeOrg::Single => {
                // One request per cycle from a rotating scan over all
                // MSHRs (the unfair arbitration Section 5.4.2 warns about
                // is modeled by the scan order itself).
                for off in 0..n {
                    let i = (self.downgrade_scan + off) % n;
                    if self.try_send_one_downgrade(now, links, i, port_used) {
                        self.downgrade_scan = (i + 1) % n;
                        return;
                    }
                }
            }
            DowngradeOrg::PerPartition => {
                // Duplicated logic: one request per cycle per partition.
                let parts: Vec<(usize, usize)> = match self.cfg.mshrs {
                    MshrOrg::PerCore { per_core } => (0..self.cores)
                        .map(|c| (c * per_core, (c + 1) * per_core))
                        .collect(),
                    // Degenerate fallback: treat the whole pool as one
                    // partition (configuration mixes are allowed in
                    // ablations).
                    _ => vec![(0, n)],
                };
                for (lo, hi) in parts {
                    for i in lo..hi {
                        if self.try_send_one_downgrade(now, links, i, port_used) {
                            break;
                        }
                    }
                }
            }
        }
    }

    pub(super) fn try_send_one_downgrade(
        &mut self,
        now: u64,
        links: &mut [CoreLink],
        i: usize,
        port_used: &mut [bool],
    ) -> bool {
        let Some(entry) = self.mshrs[i].as_mut() else {
            return false;
        };
        if entry.state != MshrState::WaitDowngrade || entry.to_downgrade.is_empty() {
            return false;
        }
        let (child, line, to) = entry.to_downgrade[0];
        let core = child.core();
        if port_used[core] || !links[core].down.can_push() {
            return false;
        }
        let pushed = links[core]
            .down
            .push(now, (child, ParentMsg::DowngradeReq { line, to }));
        debug_assert!(pushed);
        port_used[core] = true;
        entry.to_downgrade.remove(0);
        if entry.to_downgrade.is_empty() {
            self.downgrades_pending -= 1;
        }
        self.stats.downgrades_sent += 1;
        true
    }
}
