//! The LLC's response and DRAM queues: UQ dequeue (shared or per-core,
//! with the Section 5.4.2 head-of-line leak in the shared case) and DQ
//! dequeue (baseline two-cycle writeback+read vs the MI6 retry bit).

use super::*;

impl Llc {
    pub(super) fn enqueue_dq(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
        entry.state = MshrState::InDq;
        self.dq.push_back(m);
        debug_assert!(self.dq.len() <= self.mshrs.len(), "DQ sized to MSHR count");
    }

    pub(super) fn enqueue_uq(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
        entry.state = MshrState::InUq;
        let qi = match self.cfg.uq {
            UqOrg::Shared => 0,
            UqOrg::PerCore => entry.child.core(),
        };
        self.uqs[qi].push_back(m);
        self.uq_total += 1;
        debug_assert!(self.uq_total <= self.mshrs.len(), "UQs sized to MSHR count");
    }

    /// UQ dequeue: sends upgrade responses to the cores, marking which
    /// core ports were used this cycle in `port_used` (downgrade requests
    /// contend for the remainder — paper Section 5.4.2 "UQ and Downgrade
    /// requests").
    pub(super) fn dequeue_uq(&mut self, now: u64, links: &mut [CoreLink], port_used: &mut [bool]) {
        if self.uq_total == 0 {
            return; // nothing queued anywhere
        }
        match self.cfg.uq {
            UqOrg::Shared => {
                // One dequeue attempt per cycle; head-of-line blocking
                // across cores is possible (the Section 5.4.2 leak): if
                // the head's core port is busy, responses to other cores
                // behind it wait too.
                if let Some(&m) = self.uqs[0].front() {
                    if self.try_send_upgrade_resp(now, links, m, port_used) {
                        self.uqs[0].pop_front();
                        self.uq_total -= 1;
                        self.free_mshr(m);
                    }
                }
            }
            UqOrg::PerCore => {
                for qi in 0..self.uqs.len() {
                    if let Some(&m) = self.uqs[qi].front() {
                        if self.try_send_upgrade_resp(now, links, m, port_used) {
                            self.uqs[qi].pop_front();
                            self.uq_total -= 1;
                            self.free_mshr(m);
                        }
                    }
                }
            }
        }
    }

    pub(super) fn try_send_upgrade_resp(
        &mut self,
        now: u64,
        links: &mut [CoreLink],
        m: u32,
        port_used: &mut [bool],
    ) -> bool {
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        let core = entry.child.core();
        if port_used[core] || !links[core].down.can_push() {
            return false;
        }
        let msg = (
            entry.child,
            ParentMsg::UpgradeResp {
                line: entry.line,
                granted: entry.want,
                from_dram: entry.from_dram,
            },
        );
        let pushed = links[core].down.push(now, msg);
        debug_assert!(pushed);
        port_used[core] = true;
        true
    }

    /// Submits one request to DRAM, noting per-region activity when
    /// observability is attached. Timing is identical to a bare
    /// [`Dram::submit`].
    fn submit_dram(&mut self, dram: &mut Dram, now: u64, req: DramReq) -> bool {
        let ok = dram.submit(now, req);
        if ok {
            if let Some(obs) = self.obs.as_deref_mut() {
                obs.note_dram(self.region_map.region_of(req.line).index(), req.is_write);
            }
        }
        ok
    }

    /// DQ dequeue: sends DRAM requests.
    pub(super) fn dequeue_dq(&mut self, now: u64, dram: &mut Dram) {
        if now < self.dq_port_busy_until {
            return;
        }
        let Some(&m) = self.dq.front() else {
            return;
        };
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        let (needs_wb, victim_line, line) = (entry.needs_wb, entry.victim_line, entry.line);
        match self.cfg.dq {
            DqOrg::TwoCycleDequeue => {
                if needs_wb {
                    // Send writeback and read together; the port blocks one
                    // extra cycle (the Section 5.4.2 DQ leak).
                    if !dram.can_accept() {
                        return; // DRAM backpressure: retry next cycle
                    }
                    let ok = self.submit_dram(
                        dram,
                        now,
                        DramReq {
                            line: victim_line,
                            is_write: true,
                            tag: m,
                        },
                    );
                    debug_assert!(ok);
                    if !dram.can_accept() {
                        // Second request refused: keep the entry at the
                        // head with the writeback already sent.
                        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                        entry.needs_wb = false;
                        return;
                    }
                    let ok = self.submit_dram(
                        dram,
                        now,
                        DramReq {
                            line,
                            is_write: false,
                            tag: m,
                        },
                    );
                    debug_assert!(ok);
                    self.dq.pop_front();
                    self.dq_port_busy_until = now + 2;
                    self.stats.dq_double_cycles += 1;
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.needs_wb = false;
                    entry.state = MshrState::WaitDram;
                } else {
                    if !dram.can_accept() {
                        return;
                    }
                    let ok = self.submit_dram(
                        dram,
                        now,
                        DramReq {
                            line,
                            is_write: false,
                            tag: m,
                        },
                    );
                    debug_assert!(ok);
                    self.dq.pop_front();
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.state = MshrState::WaitDram;
                }
            }
            DqOrg::RetryBit => {
                if !dram.can_accept() {
                    return;
                }
                if needs_wb {
                    // Send only the writeback; set the retry bit and
                    // re-enter the pipeline as a pure miss. Dequeue takes
                    // exactly one cycle (Section 5.4.3).
                    let ok = self.submit_dram(
                        dram,
                        now,
                        DramReq {
                            line: victim_line,
                            is_write: true,
                            tag: m,
                        },
                    );
                    debug_assert!(ok);
                    self.dq.pop_front();
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.retry = true;
                    entry.state = MshrState::WaitPipe;
                    self.wait_pipe += 1;
                } else {
                    let ok = self.submit_dram(
                        dram,
                        now,
                        DramReq {
                            line,
                            is_write: false,
                            tag: m,
                        },
                    );
                    debug_assert!(ok);
                    self.dq.pop_front();
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.state = MshrState::WaitDram;
                }
            }
        }
    }
}
