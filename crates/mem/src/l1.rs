//! L1 cache model (instruction or data).
//!
//! Figure 4: 32 KiB, 8-way, 64 B lines, up to 8 outstanding requests
//! (MSHRs), pseudo-random replacement (an LFSR — no replacement state to
//! scrub on purge, as the paper notes in Section 6.1).
//!
//! The L1 is a coherent child of the LLC. Misses allocate an MSHR and send
//! an upgrade request up the core's link; evictions — *including clean
//! ones* — notify the LLC (paper Section 7.1: "the coherence protocol used
//! in RiscyOO requires L1 to notify L2 even for the invalidation of a clean
//! line"), which is why a purge flush can only retire one line per cycle.
//!
//! Purge support: [`L1Cache::start_flush`] begins a line-per-cycle
//! invalidation sweep driven by [`L1Cache::tick`]; the core stalls until
//! [`L1Cache::flush_active`] clears (Section 7.1 charges 512 cycles for the
//! 512 lines, overlapped with the TLB and predictor scrubs).

use crate::config::{L1Config, LINE_SHIFT};
use crate::link::DelayFifo;
use crate::msi::{ChildId, DowngradeResp, MsiState, ParentMsg, UpgradeReq};
use mi6_isa::PhysAddr;

/// A token identifying an in-flight core request; returned on completion.
pub type ReqToken = u64;

/// Outcome of a core access to the L1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1Access {
    /// Hit: data available at the given cycle.
    Hit {
        /// Cycle at which the value is usable.
        ready_at: u64,
    },
    /// Miss: an MSHR tracks the request; completion arrives later with the
    /// request's token.
    Miss,
    /// The cache cannot accept the request this cycle (MSHRs full, flush
    /// in progress, or link backpressure). Retry next cycle.
    Blocked,
}

/// Where a miss was ultimately served from. Observability-only (the
/// CPI stack splits miss cycles by level): never read by timing logic
/// and never serialized — a completion restored from a snapshot
/// defaults to `Llc` (it provably went past the L1; the DRAM bit is
/// not worth a format bump).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeLevel {
    /// L1 hit or store-buffer forward (cores record these themselves).
    L1,
    /// LLC hit.
    #[default]
    Llc,
    /// DRAM fill.
    Dram,
}

/// A completed miss, reported by [`L1Cache::take_completions`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Completion {
    /// The token supplied at access time.
    pub token: ReqToken,
    /// Cycle at which the value is usable.
    pub ready_at: u64,
    /// Where the fill came from (observability-only).
    pub level: ServeLevel,
}

#[derive(Clone, Copy, Debug, Default)]
struct LineEntry {
    tag: u64,
    state: MsiState,
    dirty: bool,
    /// Reserved for a pending fill; not a replacement candidate.
    locked: bool,
}

#[derive(Clone, Debug)]
struct Mshr {
    line: PhysAddr,
    want: MsiState,
    set: usize,
    way: usize,
    any_store: bool,
    waiters: Vec<ReqToken>,
}

/// Counters exported by each L1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Core accesses that hit.
    pub hits: u64,
    /// Core accesses that allocated an MSHR.
    pub misses: u64,
    /// Accesses merged into an existing MSHR.
    pub merged: u64,
    /// Accesses rejected (retried) for structural reasons.
    pub blocked: u64,
    /// Lines written back on eviction or downgrade.
    pub writebacks: u64,
    /// Downgrade requests served.
    pub downgrades: u64,
    /// Lines invalidated by flushes.
    pub flushed_lines: u64,
}

/// One L1 cache (instruction or data), a coherent child of the LLC.
#[derive(Clone, Debug)]
pub struct L1Cache {
    cfg: L1Config,
    child: ChildId,
    sets: Vec<Vec<LineEntry>>,
    mshrs: Vec<Option<Mshr>>,
    lfsr: u32,
    set_mask: u64,
    /// Flush sweep position: `Some(next line index)` while flushing.
    flush_pos: Option<usize>,
    /// Downgrade responses that could not be sent due to link backpressure
    /// (line, new state, dirty).
    pending_downgrades: Vec<(PhysAddr, MsiState, bool)>,
    completions: Vec<L1Completion>,
    /// Exported statistics.
    pub stats: L1Stats,
}

impl L1Cache {
    /// Creates an empty cache.
    pub fn new(cfg: L1Config, child: ChildId) -> L1Cache {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        L1Cache {
            cfg,
            child,
            sets: vec![vec![LineEntry::default(); cfg.ways]; sets],
            mshrs: vec![None; cfg.mshrs],
            lfsr: 0xace1,
            set_mask: sets as u64 - 1,
            flush_pos: None,
            pending_downgrades: Vec::new(),
            completions: Vec::new(),
            stats: L1Stats::default(),
        }
    }

    /// This cache's coherence child ID.
    pub fn child(&self) -> ChildId {
        self.child
    }

    /// The configured hit latency.
    pub fn hit_latency(&self) -> u32 {
        self.cfg.hit_latency
    }

    fn set_of(&self, line: PhysAddr) -> usize {
        ((line.raw() >> LINE_SHIFT) & self.set_mask) as usize
    }

    fn tag_of(&self, line: PhysAddr) -> u64 {
        line.raw() >> (LINE_SHIFT + self.set_mask.count_ones())
    }

    fn find(&self, line: PhysAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        self.sets[set]
            .iter()
            .position(|e| e.state != MsiState::I && e.tag == tag)
            .map(|way| (set, way))
    }

    fn next_random(&mut self) -> u32 {
        // 16-bit Fibonacci LFSR (taps 16,14,13,11).
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        self.lfsr
    }

    fn mshr_for(&self, line: PhysAddr) -> Option<usize> {
        self.mshrs
            .iter()
            .position(|m| m.as_ref().is_some_and(|m| m.line == line))
    }

    /// Whether any miss is outstanding.
    pub fn has_inflight(&self) -> bool {
        self.mshrs.iter().any(Option::is_some)
    }

    /// Whether a flush sweep is in progress.
    pub fn flush_active(&self) -> bool {
        self.flush_pos.is_some()
    }

    /// Whether this cache does nothing on its own clock: no backpressured
    /// downgrade responses to retry, no flush sweep, and no completions
    /// awaiting collection. Outstanding MSHRs are passive (they wake on
    /// parent messages, which the event-driven idle-skip bounds via the
    /// link FIFOs).
    pub fn is_inert(&self) -> bool {
        self.pending_downgrades.is_empty()
            && self.flush_pos.is_none()
            && self.completions.is_empty()
    }

    /// Begins a full invalidation sweep (the purge path). The core must
    /// have drained in-flight misses first.
    ///
    /// # Panics
    ///
    /// Panics if misses are outstanding — the purge sequence always drains
    /// the pipeline (and thus the MSHRs) before flushing.
    pub fn start_flush(&mut self) {
        assert!(
            !self.has_inflight(),
            "flush started with outstanding misses"
        );
        self.flush_pos = Some(0);
    }

    /// Core access for one line. `want` is [`MsiState::S`] for loads and
    /// fetches, [`MsiState::M`] for stores.
    pub fn access(
        &mut self,
        now: u64,
        token: ReqToken,
        line: PhysAddr,
        want: MsiState,
        up_req: &mut DelayFifo<UpgradeReq>,
        up_resp: &mut DelayFifo<DowngradeResp>,
    ) -> L1Access {
        debug_assert_eq!(
            line.raw() & ((1 << LINE_SHIFT) - 1),
            0,
            "not a line address"
        );
        if self.flush_active() {
            self.stats.blocked += 1;
            return L1Access::Blocked;
        }
        if let Some((set, way)) = self.find(line) {
            let entry = &mut self.sets[set][way];
            if entry.state.covers(want) && !entry.locked {
                if want == MsiState::M {
                    entry.dirty = true;
                }
                self.stats.hits += 1;
                return L1Access::Hit {
                    ready_at: now + self.cfg.hit_latency as u64,
                };
            }
        }
        // Miss or S→M upgrade. Merge into an existing MSHR when possible.
        if let Some(idx) = self.mshr_for(line) {
            let m = self.mshrs[idx]
                .as_mut()
                .expect("mshr_for returned live index");
            if m.want.covers(want) {
                m.waiters.push(token);
                m.any_store |= want == MsiState::M;
                self.stats.merged += 1;
                return L1Access::Miss;
            }
            // A store hitting a pending S-fill would need a second upgrade;
            // structural stall (rare).
            self.stats.blocked += 1;
            return L1Access::Blocked;
        }
        let Some(free) = self.mshrs.iter().position(Option::is_none) else {
            self.stats.blocked += 1;
            return L1Access::Blocked;
        };
        if !up_req.can_push() {
            self.stats.blocked += 1;
            return L1Access::Blocked;
        }
        let set = self.set_of(line);
        // Pick a way: an S→M upgrade reuses the line's own way; otherwise
        // an invalid way, else pseudo-random eviction.
        let tag = self.tag_of(line);
        let existing = self.sets[set]
            .iter()
            .position(|e| e.state != MsiState::I && e.tag == tag);
        let way = if let Some(w) = existing {
            w
        } else if let Some(w) = self.sets[set]
            .iter()
            .position(|e| e.state == MsiState::I && !e.locked)
        {
            w
        } else {
            // Random among unlocked valid ways; if everything is locked the
            // access must stall.
            let candidates: Vec<usize> = self.sets[set]
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.locked)
                .map(|(w, _)| w)
                .collect();
            if candidates.is_empty() {
                self.stats.blocked += 1;
                return L1Access::Blocked;
            }
            let pick = self.next_random() as usize % candidates.len();
            let way = candidates[pick];
            // Evicting a valid line requires notifying the LLC.
            if !up_resp.can_push() {
                self.stats.blocked += 1;
                return L1Access::Blocked;
            }
            let victim = self.sets[set][way];
            let victim_line = self.line_addr(set, victim.tag);
            let pushed = up_resp.push(
                now,
                DowngradeResp {
                    child: self.child,
                    line: victim_line,
                    now: MsiState::I,
                    dirty: victim.dirty,
                },
            );
            debug_assert!(pushed);
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            way
        };
        {
            let entry = &mut self.sets[set][way];
            if existing.is_none() {
                // Fresh allocation: the slot is empty (or just evicted).
                entry.tag = tag;
                entry.state = MsiState::I;
                entry.dirty = false;
            }
            // S survives in place during an S→M upgrade.
            entry.locked = true;
        }
        let pushed = up_req.push(
            now,
            UpgradeReq {
                child: self.child,
                line,
                want,
            },
        );
        debug_assert!(pushed);
        self.mshrs[free] = Some(Mshr {
            line,
            want,
            set,
            way,
            any_store: want == MsiState::M,
            waiters: vec![token],
        });
        self.stats.misses += 1;
        L1Access::Miss
    }

    fn line_addr(&self, set: usize, tag: u64) -> PhysAddr {
        PhysAddr::new(
            (tag << (LINE_SHIFT + self.set_mask.count_ones())) | ((set as u64) << LINE_SHIFT),
        )
    }

    /// Handles one parent message (upgrade response or downgrade request).
    pub fn handle_parent(
        &mut self,
        now: u64,
        msg: ParentMsg,
        up_resp: &mut DelayFifo<DowngradeResp>,
    ) {
        match msg {
            ParentMsg::UpgradeResp {
                line,
                granted,
                from_dram,
            } => {
                let idx = self
                    .mshr_for(line)
                    .expect("upgrade response without a matching MSHR");
                let m = self.mshrs[idx]
                    .take()
                    .expect("mshr_for returned live index");
                debug_assert!(granted.covers(m.want));
                let tag = self.tag_of(line);
                let entry = &mut self.sets[m.set][m.way];
                entry.tag = tag;
                entry.state = granted;
                entry.locked = false;
                entry.dirty = m.any_store;
                let ready_at = now + 1;
                let level = if from_dram {
                    ServeLevel::Dram
                } else {
                    ServeLevel::Llc
                };
                self.completions
                    .extend(m.waiters.iter().map(|&token| L1Completion {
                        token,
                        ready_at,
                        level,
                    }));
            }
            ParentMsg::DowngradeReq { line, to } => {
                // Ignore if we no longer hold the line above `to` — a
                // voluntary eviction notification is already in flight and
                // serves as the acknowledgement.
                if let Some((set, way)) = self.find(line) {
                    let entry = &mut self.sets[set][way];
                    if entry.state > to && !entry.locked {
                        let dirty = entry.dirty && entry.state == MsiState::M;
                        entry.state = to;
                        if dirty {
                            entry.dirty = false;
                            self.stats.writebacks += 1;
                        }
                        self.stats.downgrades += 1;
                        let resp = DowngradeResp {
                            child: self.child,
                            line,
                            now: to,
                            dirty,
                        };
                        if !up_resp.push(now, resp) {
                            // State already downgraded; queue the response
                            // locally until the link frees up.
                            self.pending_downgrades.push((line, to, dirty));
                        }
                    }
                }
            }
        }
    }

    /// Per-cycle maintenance: retries backpressured downgrade responses.
    pub fn tick(&mut self, now: u64, up_resp: &mut DelayFifo<DowngradeResp>) {
        while let Some(&(line, to, dirty)) = self.pending_downgrades.first() {
            let resp = DowngradeResp {
                child: self.child,
                line,
                now: to,
                dirty,
            };
            if up_resp.push(now, resp) {
                self.pending_downgrades.remove(0);
            } else {
                break;
            }
        }
    }

    /// Advances the flush sweep by one line slot (one cycle of purge).
    ///
    /// Returns `Some((line, dirty))` when a valid line was invalidated this
    /// cycle; the caller forwards the notification to the LLC directory
    /// (every invalidation — clean or dirty — must notify, Section 7.1).
    /// Returns `None` for empty slots and after the sweep completes
    /// ([`L1Cache::flush_active`] turns false).
    pub fn flush_step(&mut self) -> Option<(PhysAddr, bool)> {
        let pos = self.flush_pos?;
        let total = self.cfg.lines();
        let set = pos / self.cfg.ways;
        let way = pos % self.cfg.ways;
        let entry = self.sets[set][way];
        self.flush_pos = if pos + 1 >= total {
            None
        } else {
            Some(pos + 1)
        };
        if entry.state != MsiState::I {
            let line = self.line_addr(set, entry.tag);
            if entry.dirty {
                self.stats.writebacks += 1;
            }
            self.sets[set][way] = LineEntry::default();
            self.stats.flushed_lines += 1;
            Some((line, entry.dirty))
        } else {
            None
        }
    }

    /// Drains completed misses.
    pub fn take_completions(&mut self) -> Vec<L1Completion> {
        std::mem::take(&mut self.completions)
    }

    /// The MSI state currently held for a line (I if absent). Test aid.
    pub fn probe(&self, line: PhysAddr) -> MsiState {
        self.find(line)
            .map(|(s, w)| self.sets[s][w].state)
            .unwrap_or(MsiState::I)
    }

    /// Number of valid lines (test aid).
    pub fn valid_lines(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|e| e.state != MsiState::I)
            .count()
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for LineEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.tag);
        self.state.save(w);
        w.bool(self.dirty);
        w.bool(self.locked);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(LineEntry {
            tag: r.u64()?,
            state: MsiState::load(r)?,
            dirty: r.bool()?,
            locked: r.bool()?,
        })
    }
}

impl SnapState for Mshr {
    fn save(&self, w: &mut SnapWriter) {
        self.line.save(w);
        self.want.save(w);
        w.usize(self.set);
        w.usize(self.way);
        w.bool(self.any_store);
        self.waiters.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Mshr {
            line: PhysAddr::load(r)?,
            want: MsiState::load(r)?,
            set: r.usize()?,
            way: r.usize()?,
            any_store: r.bool()?,
            waiters: SnapState::load(r)?,
        })
    }
}

impl SnapState for L1Completion {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.token);
        w.u64(self.ready_at);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(L1Completion {
            token: r.u64()?,
            ready_at: r.u64()?,
            level: ServeLevel::default(),
        })
    }
}

impl SnapState for L1Stats {
    fn save(&self, w: &mut SnapWriter) {
        for v in [
            self.hits,
            self.misses,
            self.merged,
            self.blocked,
            self.writebacks,
            self.downgrades,
            self.flushed_lines,
        ] {
            w.u64(v);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(L1Stats {
            hits: r.u64()?,
            misses: r.u64()?,
            merged: r.u64()?,
            blocked: r.u64()?,
            writebacks: r.u64()?,
            downgrades: r.u64()?,
            flushed_lines: r.u64()?,
        })
    }
}

impl L1Cache {
    /// Serializes the cache's mutable state (tags, MSHRs, LFSR, flush
    /// sweep, pending traffic, counters). The geometry comes from the
    /// configuration and is written only for validation.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.sets.len());
        w.usize(self.cfg.ways);
        w.usize(self.mshrs.len());
        for set in &self.sets {
            for entry in set {
                entry.save(w);
            }
        }
        self.mshrs.save(w);
        w.u32(self.lfsr);
        self.flush_pos.save(w);
        self.pending_downgrades.save(w);
        self.completions.save(w);
        self.stats.save(w);
    }

    /// Restores state saved by [`L1Cache::save_state`] into this cache.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::ConfigMismatch`] when the snapshot's geometry
    /// differs from this cache's configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let (sets, ways, mshrs) = (r.usize()?, r.usize()?, r.usize()?);
        if sets != self.sets.len() || ways != self.cfg.ways || mshrs != self.mshrs.len() {
            return Err(SnapError::ConfigMismatch {
                what: format!(
                    "L1 geometry {sets}x{ways} ways / {mshrs} MSHRs vs {}x{} / {}",
                    self.sets.len(),
                    self.cfg.ways,
                    self.mshrs.len()
                ),
            });
        }
        for set in &mut self.sets {
            for entry in set.iter_mut() {
                *entry = LineEntry::load(r)?;
            }
        }
        self.mshrs = SnapState::load(r)?;
        if self.mshrs.len() != mshrs {
            return Err(SnapError::BadValue {
                what: "L1 MSHR count changed mid-snapshot".into(),
            });
        }
        self.lfsr = r.u32()?;
        self.flush_pos = SnapState::load(r)?;
        self.pending_downgrades = SnapState::load(r)?;
        self.completions = SnapState::load(r)?;
        self.stats = L1Stats::load(r)?;
        Ok(())
    }

    /// Silently invalidates a line (no LLC notification) — used when a
    /// forked restore re-homes the LLC and must keep inclusivity.
    pub(crate) fn drop_line(&mut self, line: PhysAddr) {
        if let Some((set, way)) = self.find(line) {
            self.sets[set][way] = LineEntry::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LINK_CAPACITY;

    fn fixture() -> (L1Cache, DelayFifo<UpgradeReq>, DelayFifo<DowngradeResp>) {
        (
            L1Cache::new(L1Config::paper(), ChildId::l1d(0)),
            DelayFifo::new(LINK_CAPACITY, 0),
            DelayFifo::new(LINK_CAPACITY, 0),
        )
    }

    fn fill(
        l1: &mut L1Cache,
        now: u64,
        line: u64,
        want: MsiState,
        up_req: &mut DelayFifo<UpgradeReq>,
        up_resp: &mut DelayFifo<DowngradeResp>,
    ) {
        let r = l1.access(now, 0, PhysAddr::new(line), want, up_req, up_resp);
        assert_eq!(r, L1Access::Miss);
        let req = up_req.pop(now).expect("request sent");
        assert_eq!(req.line, PhysAddr::new(line));
        l1.handle_parent(
            now,
            ParentMsg::UpgradeResp {
                line: PhysAddr::new(line),
                granted: want,
                from_dram: false,
            },
            up_resp,
        );
        l1.take_completions();
    }

    #[test]
    fn miss_then_hit() {
        let (mut l1, mut req, mut resp) = fixture();
        fill(&mut l1, 0, 0x1000, MsiState::S, &mut req, &mut resp);
        let r = l1.access(
            1,
            1,
            PhysAddr::new(0x1000),
            MsiState::S,
            &mut req,
            &mut resp,
        );
        assert_eq!(r, L1Access::Hit { ready_at: 3 });
        assert_eq!(l1.stats.hits, 1);
        assert_eq!(l1.stats.misses, 1);
    }

    #[test]
    fn store_to_shared_line_upgrades() {
        let (mut l1, mut req, mut resp) = fixture();
        fill(&mut l1, 0, 0x1000, MsiState::S, &mut req, &mut resp);
        let r = l1.access(
            1,
            2,
            PhysAddr::new(0x1000),
            MsiState::M,
            &mut req,
            &mut resp,
        );
        assert_eq!(r, L1Access::Miss);
        let sent = req.pop(1).unwrap();
        assert_eq!(sent.want, MsiState::M);
        l1.handle_parent(
            1,
            ParentMsg::UpgradeResp {
                line: PhysAddr::new(0x1000),
                granted: MsiState::M,
                from_dram: false,
            },
            &mut resp,
        );
        assert_eq!(l1.probe(PhysAddr::new(0x1000)), MsiState::M);
        let done = l1.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, 2);
    }

    #[test]
    fn same_line_misses_merge() {
        let (mut l1, mut req, mut resp) = fixture();
        let a = PhysAddr::new(0x2000);
        assert_eq!(
            l1.access(0, 1, a, MsiState::S, &mut req, &mut resp),
            L1Access::Miss
        );
        assert_eq!(
            l1.access(0, 2, a, MsiState::S, &mut req, &mut resp),
            L1Access::Miss
        );
        assert_eq!(l1.stats.merged, 1);
        assert_eq!(req.len(), 1); // only one upgrade request sent
        l1.handle_parent(
            5,
            ParentMsg::UpgradeResp {
                line: a,
                granted: MsiState::S,
                from_dram: false,
            },
            &mut resp,
        );
        let done = l1.take_completions();
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn mshrs_exhaust_blocks() {
        let (mut l1, _req, mut resp) = fixture();
        // Paper: max 8 requests. Use request FIFO with enough room.
        let mut big_req = DelayFifo::new(16, 0);
        for i in 0..8u64 {
            let line = PhysAddr::new(0x10000 + i * 64);
            assert_eq!(
                l1.access(0, i, line, MsiState::S, &mut big_req, &mut resp),
                L1Access::Miss
            );
        }
        let r = l1.access(
            0,
            99,
            PhysAddr::new(0x90000),
            MsiState::S,
            &mut big_req,
            &mut resp,
        );
        assert_eq!(r, L1Access::Blocked);
    }

    #[test]
    fn eviction_notifies_llc_even_when_clean() {
        let (mut l1, mut req, mut resp) = fixture();
        // Fill all 8 ways of set 0 (64 sets; stride = 64 sets * 64 B).
        let stride = 64 * 64u64;
        for w in 0..8u64 {
            fill(
                &mut l1,
                w,
                0x4000 + w * stride,
                MsiState::S,
                &mut req,
                &mut resp,
            );
        }
        // Ninth distinct line in the same set forces a clean eviction.
        let r = l1.access(
            100,
            9,
            PhysAddr::new(0x4000 + 8 * stride),
            MsiState::S,
            &mut req,
            &mut resp,
        );
        assert_eq!(r, L1Access::Miss);
        let evict = resp.pop(100).expect("clean eviction must notify LLC");
        assert_eq!(evict.now, MsiState::I);
        assert!(!evict.dirty);
    }

    #[test]
    fn downgrade_request_writes_back_dirty() {
        let (mut l1, mut req, mut resp) = fixture();
        fill(&mut l1, 0, 0x3000, MsiState::M, &mut req, &mut resp);
        // Store marks it dirty.
        let r = l1.access(
            1,
            5,
            PhysAddr::new(0x3000),
            MsiState::M,
            &mut req,
            &mut resp,
        );
        assert!(matches!(r, L1Access::Hit { .. }));
        l1.handle_parent(
            2,
            ParentMsg::DowngradeReq {
                line: PhysAddr::new(0x3000),
                to: MsiState::I,
            },
            &mut resp,
        );
        let ack = resp.pop(2).unwrap();
        assert!(ack.dirty);
        assert_eq!(ack.now, MsiState::I);
        assert_eq!(l1.probe(PhysAddr::new(0x3000)), MsiState::I);
    }

    #[test]
    fn downgrade_for_absent_line_ignored() {
        let (mut l1, _req, mut resp) = fixture();
        l1.handle_parent(
            0,
            ParentMsg::DowngradeReq {
                line: PhysAddr::new(0x7000),
                to: MsiState::I,
            },
            &mut resp,
        );
        assert!(resp.is_empty());
    }

    #[test]
    fn flush_invalidates_everything_one_line_per_cycle() {
        let (mut l1, mut req, mut resp) = fixture();
        for i in 0..20u64 {
            fill(
                &mut l1,
                i,
                0x8000 + i * 64,
                MsiState::S,
                &mut req,
                &mut resp,
            );
        }
        assert_eq!(l1.valid_lines(), 20);
        l1.start_flush();
        let mut cycles = 0u64;
        let mut notifications = 0;
        while l1.flush_active() {
            if l1.flush_step().is_some() {
                notifications += 1;
            }
            cycles += 1;
        }
        assert_eq!(l1.valid_lines(), 0);
        assert_eq!(l1.stats.flushed_lines, 20);
        // The sweep visits every line slot: exactly 512 cycles (Sec 7.1).
        assert_eq!(cycles, L1Config::paper().lines() as u64);
        // Every valid line's invalidation notified the LLC.
        assert_eq!(notifications, 20);
    }

    #[test]
    #[should_panic(expected = "outstanding misses")]
    fn flush_with_inflight_panics() {
        let (mut l1, mut req, mut resp) = fixture();
        let _ = l1.access(0, 0, PhysAddr::new(0x100), MsiState::S, &mut req, &mut resp);
        l1.start_flush();
    }

    #[test]
    fn blocked_during_flush() {
        let (mut l1, mut req, mut resp) = fixture();
        l1.start_flush();
        let r = l1.access(0, 0, PhysAddr::new(0x100), MsiState::S, &mut req, &mut resp);
        assert_eq!(r, L1Access::Blocked);
    }
}
