//! Constant-latency DRAM controller.
//!
//! The paper evaluates MI6 with a constant-latency DRAM controller (Figure
//! 4: 120 cycles, max 24 outstanding requests) and argues in Section 5.2
//! that a *reordering* controller leaks timing across protection domains
//! through bank scheduling. This model therefore completes every request
//! exactly `latency` cycles after acceptance, in acceptance order.
//!
//! Backpressure: once `max_inflight` requests are outstanding the
//! controller accepts no more. With MI6's MSHR sizing (at most `dmax/2`
//! LLC MSHRs, each generating at most a writeback plus a read) this never
//! happens — asserted by the `secure_sizing_never_backpressures` test in
//! the LLC module.

use crate::config::DramConfig;
use mi6_isa::PhysAddr;
use std::collections::VecDeque;

/// A request accepted by the DRAM controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramReq {
    /// Line address.
    pub line: PhysAddr,
    /// True for writebacks (no response is sent); false for reads.
    pub is_write: bool,
    /// Opaque tag returned with read responses (the LLC MSHR index).
    pub tag: u32,
}

/// A read response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramResp {
    /// Line address.
    pub line: PhysAddr,
    /// The tag from the request.
    pub tag: u32,
}

/// The constant-latency DRAM controller model.
#[derive(Clone, Debug)]
pub struct Dram {
    latency: u64,
    max_inflight: usize,
    inflight: VecDeque<(u64, DramReq)>,
    /// Statistics: total reads accepted.
    pub reads: u64,
    /// Statistics: total writebacks accepted.
    pub writes: u64,
    /// Statistics: cycles in which a request was refused (backpressure).
    pub backpressure_events: u64,
}

impl Dram {
    /// Creates the controller from its configuration.
    pub fn new(cfg: &DramConfig) -> Dram {
        Dram {
            latency: cfg.latency as u64,
            max_inflight: cfg.max_inflight,
            inflight: VecDeque::new(),
            reads: 0,
            writes: 0,
            backpressure_events: 0,
        }
    }

    /// Whether a request would be accepted this cycle.
    pub fn can_accept(&self) -> bool {
        self.inflight.len() < self.max_inflight
    }

    /// Number of outstanding requests.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// The completion cycle of the oldest outstanding request (requests
    /// complete in acceptance order, so this is the earliest one). Used
    /// by the event-driven idle-skip.
    pub fn next_ready(&self) -> Option<u64> {
        self.inflight.front().map(|&(ready, _)| ready)
    }

    /// Submits a request at cycle `now`. Returns `false` under
    /// backpressure (the caller must retry; this is the major timing leak
    /// MI6's MSHR sizing eliminates).
    #[must_use]
    pub fn submit(&mut self, now: u64, req: DramReq) -> bool {
        if !self.can_accept() {
            self.backpressure_events += 1;
            return false;
        }
        if req.is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.inflight.push_back((now + self.latency, req));
        true
    }

    /// Completes requests due at cycle `now`, returning read responses.
    /// Writebacks complete silently. At most the whole due set completes
    /// in one cycle (the response port is never backpressured — paper
    /// Section 5.4.1: responses are buffered in the requesting MSHR).
    pub fn tick(&mut self, now: u64) -> Vec<DramResp> {
        let mut resps = Vec::new();
        while let Some((ready, req)) = self.inflight.front().copied() {
            if ready > now {
                break;
            }
            self.inflight.pop_front();
            if !req.is_write {
                resps.push(DramResp {
                    line: req.line,
                    tag: req.tag,
                });
            }
        }
        resps
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for DramReq {
    fn save(&self, w: &mut SnapWriter) {
        self.line.save(w);
        w.bool(self.is_write);
        w.u32(self.tag);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DramReq {
            line: PhysAddr::load(r)?,
            is_write: r.bool()?,
            tag: r.u32()?,
        })
    }
}

impl SnapState for Dram {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.latency);
        w.usize(self.max_inflight);
        self.inflight.save(w);
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.backpressure_events);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let latency = r.u64()?;
        let max_inflight = r.usize()?;
        let inflight: VecDeque<(u64, DramReq)> = SnapState::load(r)?;
        if inflight.len() > max_inflight {
            return Err(SnapError::BadValue {
                what: format!(
                    "{} DRAM requests in flight over the limit of {max_inflight}",
                    inflight.len()
                ),
            });
        }
        Ok(Dram {
            latency,
            max_inflight,
            inflight,
            reads: r.u64()?,
            writes: r.u64()?,
            backpressure_events: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&DramConfig {
            size_bytes: 1 << 30,
            latency: 120,
            max_inflight: 4,
            regions: 64,
        })
    }

    fn read(line: u64, tag: u32) -> DramReq {
        DramReq {
            line: PhysAddr::new(line),
            is_write: false,
            tag,
        }
    }

    #[test]
    fn constant_latency() {
        let mut d = dram();
        assert!(d.submit(100, read(0x40, 1)));
        assert!(d.tick(219).is_empty());
        let resps = d.tick(220);
        assert_eq!(
            resps,
            vec![DramResp {
                line: PhysAddr::new(0x40),
                tag: 1
            }]
        );
    }

    #[test]
    fn writebacks_complete_silently() {
        let mut d = dram();
        assert!(d.submit(
            0,
            DramReq {
                line: PhysAddr::new(0x80),
                is_write: true,
                tag: 0
            }
        ));
        assert!(d.tick(120).is_empty());
        assert_eq!(d.inflight(), 0);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn backpressure_at_capacity() {
        let mut d = dram();
        for i in 0..4 {
            assert!(d.submit(0, read(0x40 * i, i as u32)));
        }
        assert!(!d.can_accept());
        assert!(!d.submit(0, read(0x400, 9)));
        assert_eq!(d.backpressure_events, 1);
        // after completion, capacity frees
        assert_eq!(d.tick(120).len(), 4);
        assert!(d.can_accept());
    }

    #[test]
    fn acceptance_order_preserved() {
        let mut d = dram();
        assert!(d.submit(0, read(0x40, 1)));
        assert!(d.submit(1, read(0x80, 2)));
        let r = d.tick(121);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].tag, 1);
        assert_eq!(r[1].tag, 2);
    }

    #[test]
    fn same_cycle_requests_complete_together() {
        let mut d = dram();
        assert!(d.submit(5, read(0x40, 1)));
        assert!(d.submit(5, read(0x80, 2)));
        assert_eq!(d.tick(124).len(), 0);
        assert_eq!(d.tick(125).len(), 2);
    }
}
