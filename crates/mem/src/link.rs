//! Fixed-latency bounded FIFOs modelling on-chip links.
//!
//! Each core has a dedicated link to the LLC carrying three independent
//! FIFOs (paper Figure 1): upgrade requests up, downgrade responses up, and
//! parent messages down. [`DelayFifo`] models one such FIFO: bounded
//! capacity (backpressure when full) and a fixed propagation latency —
//! a message enqueued in cycle `T` becomes visible to the consumer at
//! `T + latency`.

use std::collections::VecDeque;

/// A bounded FIFO whose entries become visible `latency` cycles after
/// being pushed.
///
/// The simulator calls [`DelayFifo::push`]/[`DelayFifo::pop`] freely within
/// a cycle; `now` is the current cycle number supplied by the caller.
#[derive(Clone, Debug)]
pub struct DelayFifo<T> {
    items: VecDeque<(u64, T)>,
    capacity: usize,
    latency: u64,
}

impl<T> DelayFifo<T> {
    /// Creates a FIFO with the given capacity and propagation latency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: u32) -> DelayFifo<T> {
        assert!(capacity > 0, "fifo capacity must be positive");
        DelayFifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            latency: latency as u64,
        }
    }

    /// Whether a push would be accepted this cycle.
    pub fn can_push(&self) -> bool {
        self.items.len() < self.capacity
    }

    /// Number of queued messages (visible or still propagating).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no messages at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueues a message at cycle `now`. Returns `false` (dropping
    /// nothing) when full — callers must check [`DelayFifo::can_push`] and
    /// hold the message if the FIFO is full, since that backpressure *is*
    /// the timing channel under study.
    #[must_use]
    pub fn push(&mut self, now: u64, value: T) -> bool {
        if !self.can_push() {
            return false;
        }
        self.items.push_back((now + self.latency, value));
        true
    }

    /// The cycle at which the head message becomes (or became) visible
    /// to the consumer, regardless of the current cycle. Used by the
    /// event-driven idle-skip to bound how far the clock may jump.
    pub fn next_ready(&self) -> Option<u64> {
        self.items.front().map(|&(ready, _)| ready)
    }

    /// The head message, if it has propagated by cycle `now`.
    pub fn peek(&self, now: u64) -> Option<&T> {
        match self.items.front() {
            Some((ready, value)) if *ready <= now => Some(value),
            _ => None,
        }
    }

    /// Pops the head message if it has propagated by cycle `now`.
    pub fn pop(&mut self, now: u64) -> Option<T> {
        if self.peek(now).is_some() {
            self.items.pop_front().map(|(_, v)| v)
        } else {
            None
        }
    }

    /// Discards all messages (used by whole-machine resets in tests).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

/// The FIFO serializes its geometry alongside its contents so a restore
/// can verify the link shape it is loading into.
impl<T: SnapState> SnapState for DelayFifo<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.capacity);
        w.u64(self.latency);
        self.items.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let capacity = r.usize()?;
        let latency = r.u64()?;
        let items: VecDeque<(u64, T)> = SnapState::load(r)?;
        if capacity == 0 {
            return Err(SnapError::BadValue {
                what: "fifo capacity 0".into(),
            });
        }
        if items.len() > capacity {
            return Err(SnapError::BadValue {
                what: format!("fifo holds {} items over capacity {capacity}", items.len()),
            });
        }
        Ok(DelayFifo {
            items,
            capacity,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_respected() {
        let mut f = DelayFifo::new(4, 3);
        assert!(f.push(10, "a"));
        assert_eq!(f.pop(10), None);
        assert_eq!(f.pop(12), None);
        assert_eq!(f.pop(13), Some("a"));
    }

    #[test]
    fn zero_latency_visible_same_cycle() {
        let mut f = DelayFifo::new(1, 0);
        assert!(f.push(5, 42));
        assert_eq!(f.pop(5), Some(42));
    }

    #[test]
    fn capacity_backpressure() {
        let mut f = DelayFifo::new(2, 1);
        assert!(f.push(0, 1));
        assert!(f.push(0, 2));
        assert!(!f.can_push());
        assert!(!f.push(0, 3));
        assert_eq!(f.pop(1), Some(1));
        assert!(f.can_push());
    }

    #[test]
    fn fifo_order_preserved() {
        let mut f = DelayFifo::new(8, 2);
        for i in 0..5 {
            assert!(f.push(i, i));
        }
        let mut got = Vec::new();
        for now in 0..10 {
            while let Some(v) = f.pop(now) {
                got.push(v);
            }
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = DelayFifo::new(2, 0);
        assert!(f.push(0, 9));
        assert_eq!(f.peek(0), Some(&9));
        assert_eq!(f.pop(0), Some(9));
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = DelayFifo::<u8>::new(0, 1);
    }
}
