//! The assembled memory system: per-core L1I/L1D, links, LLC, and DRAM.
//!
//! [`MemSystem`] is what a core (or the SoC) talks to. Each core has two
//! ports — instruction fetch and data — multiplexed onto the core's single
//! coherence link to the LLC (paper Figure 1). One call to
//! [`MemSystem::tick`] advances the whole hierarchy by one cycle in a fixed
//! deterministic order.

use crate::config::{MemConfig, LINE_SHIFT, LINK_CAPACITY, LINK_LATENCY};
use crate::dram::Dram;
use crate::l1::{L1Access, L1Cache, L1Completion, ReqToken};
use crate::llc::{CoreLink, Llc};
use crate::msi::{ChildId, MsiState};
use crate::phys::PhysMem;
use crate::region::RegionMap;
use mi6_isa::PhysAddr;

/// Which per-core port a request uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Port {
    /// Instruction fetch (L1I).
    IFetch,
    /// Loads, stores, and page-table walks (L1D).
    Data,
}

/// Why a core's memory traffic is blocked *inside* the shared hierarchy,
/// as opposed to plain miss latency. These are the two MI6 mechanisms
/// that add queuing delay (Sections 5.4.3): the per-core MSHR quota /
/// bank partition, and the round-robin LLC entry arbiter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemStallReason {
    /// The core's head upgrade request cannot allocate an MSHR in its
    /// quota/bank.
    MshrQuotaDeny,
    /// The core has an admissible LLC message but the round-robin slot
    /// belongs to another core.
    ArbDeny,
}

/// The memory hierarchy below the cores.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    /// Architectural DRAM contents (functional side).
    pub phys: PhysMem,
    l1is: Vec<L1Cache>,
    l1ds: Vec<L1Cache>,
    links: Vec<CoreLink>,
    llc: Llc,
    dram: Dram,
    region_map: RegionMap,
    completions: Vec<[Vec<L1Completion>; 2]>,
}

impl MemSystem {
    /// Builds the hierarchy for `cores` cores.
    pub fn new(cfg: MemConfig, cores: usize) -> MemSystem {
        let region_map = RegionMap::new(&cfg.dram);
        MemSystem {
            cfg,
            phys: PhysMem::new(cfg.dram.size_bytes),
            l1is: (0..cores)
                .map(|c| L1Cache::new(cfg.l1i, ChildId::l1i(c)))
                .collect(),
            l1ds: (0..cores)
                .map(|c| L1Cache::new(cfg.l1d, ChildId::l1d(c)))
                .collect(),
            links: (0..cores)
                .map(|_| CoreLink::new(LINK_CAPACITY, LINK_LATENCY))
                .collect(),
            llc: Llc::new(cfg.llc, cores, region_map),
            dram: Dram::new(&cfg.dram),
            region_map,
            completions: (0..cores).map(|_| [Vec::new(), Vec::new()]).collect(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1is.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// The DRAM-region map (shared by cores for access checks).
    pub fn region_map(&self) -> RegionMap {
        self.region_map
    }

    /// Read-only CPI-stack probe: why `core`'s memory traffic is stalled
    /// by an MI6 isolation mechanism this cycle, if it is. Quota denial
    /// dominates (the request cannot even enter the LLC); arbiter denial
    /// covers admissible work waiting out another core's round-robin
    /// slot. `None` means any wait is plain miss latency.
    pub fn mem_stall_reason(&self, now: u64, core: usize) -> Option<MemStallReason> {
        let link = &self.links[core];
        if self.llc.quota_denied(now, core, link) {
            return Some(MemStallReason::MshrQuotaDeny);
        }
        if self.llc.arb_denied(now, core, link) {
            return Some(MemStallReason::ArbDeny);
        }
        None
    }

    /// Issues a timing access for the line containing `addr`.
    ///
    /// `store` requests M (write permission); otherwise S. On
    /// [`L1Access::Miss`] the completion is delivered later via
    /// [`MemSystem::take_completions`] with the same `token`.
    pub fn access(
        &mut self,
        now: u64,
        core: usize,
        port: Port,
        token: ReqToken,
        addr: PhysAddr,
        store: bool,
    ) -> L1Access {
        let line = addr.line_base();
        let want = if store { MsiState::M } else { MsiState::S };
        // Split borrows: link and L1 are separate fields.
        let link = &mut self.links[core];
        let l1 = match port {
            Port::IFetch => &mut self.l1is[core],
            Port::Data => &mut self.l1ds[core],
        };
        l1.access(now, token, line, want, &mut link.up_req, &mut link.up_resp)
    }

    /// Drains completed misses for one core port.
    pub fn take_completions(&mut self, core: usize, port: Port) -> Vec<L1Completion> {
        let idx = match port {
            Port::IFetch => 0,
            Port::Data => 1,
        };
        std::mem::take(&mut self.completions[core][idx])
    }

    /// Starts the purge flush sweep of both L1s of a core. The caller must
    /// have drained in-flight misses first (the purge sequence flushes the
    /// core pipeline before scrubbing).
    pub fn start_flush(&mut self, core: usize) {
        self.l1is[core].start_flush();
        self.l1ds[core].start_flush();
    }

    /// Whether a flush sweep is still running on a core.
    pub fn flush_active(&self, core: usize) -> bool {
        self.l1is[core].flush_active() || self.l1ds[core].flush_active()
    }

    /// Whether a core has in-flight misses on either port.
    pub fn core_quiescent(&self, core: usize) -> bool {
        !self.l1is[core].has_inflight() && !self.l1ds[core].has_inflight()
    }

    /// Advances the hierarchy one cycle.
    pub fn tick(&mut self, now: u64) {
        let cores = self.cores();
        for core in 0..cores {
            // Deliver at most one parent message per link per cycle (the
            // per-core down-port).
            if let Some((child, msg)) = self.links[core].down.pop(now) {
                let link = &mut self.links[core];
                let l1 = if child.is_data() {
                    &mut self.l1ds[core]
                } else {
                    &mut self.l1is[core]
                };
                l1.handle_parent(now, msg, &mut link.up_resp);
            }
            // L1 maintenance: retry blocked downgrade responses; advance
            // flush sweeps (one line per cycle per cache, notifications
            // applied out of band — see `Llc::flush_notify`).
            for is_data in [false, true] {
                let link = &mut self.links[core];
                let l1 = if is_data {
                    &mut self.l1ds[core]
                } else {
                    &mut self.l1is[core]
                };
                l1.tick(now, &mut link.up_resp);
                if l1.flush_active() {
                    let child = l1.child();
                    if let Some((line, dirty)) = l1.flush_step() {
                        self.llc.flush_notify(child, line, dirty);
                    }
                }
            }
        }
        self.llc.tick(now, &mut self.links, &mut self.dram);
        // Collect L1 completions into the per-port queues.
        for core in 0..cores {
            let done = self.l1is[core].take_completions();
            self.completions[core][0].extend(done);
            let done = self.l1ds[core].take_completions();
            self.completions[core][1].extend(done);
        }
    }

    /// The earliest future cycle at which [`MemSystem::tick`] could do any
    /// work, or `None` when the hierarchy might act at `now` itself (tick
    /// normally). `Some(u64::MAX)` means fully quiescent pending new core
    /// requests. Used by the event-driven idle-skip in
    /// `Machine::run_to_completion`.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        // Undelivered completions are picked up by the cores each cycle.
        if self
            .completions
            .iter()
            .any(|ports| !ports[0].is_empty() || !ports[1].is_empty())
        {
            return None;
        }
        let mut next = u64::MAX;
        for link in &self.links {
            if merge_front(&mut next, now, link.down.next_ready())
                || merge_front(&mut next, now, link.up_req.next_ready())
                || merge_front(&mut next, now, link.up_resp.next_ready())
            {
                return None;
            }
        }
        for l1 in self.l1is.iter().chain(&self.l1ds) {
            if !l1.is_inert() {
                return None;
            }
        }
        next = next.min(self.llc.next_event(now)?);
        if merge_front(&mut next, now, self.dram.next_ready()) {
            return None;
        }
        Some(next)
    }

    /// L1 statistics for a core port.
    pub fn l1_stats(&self, core: usize, port: Port) -> crate::l1::L1Stats {
        match port {
            Port::IFetch => self.l1is[core].stats,
            Port::Data => self.l1ds[core].stats,
        }
    }

    /// LLC statistics.
    pub fn llc_stats(&self) -> crate::llc::LlcStats {
        self.llc.stats
    }

    /// DRAM read/write/backpressure counters as (reads, writes, stalls).
    pub fn dram_stats(&self) -> (u64, u64, u64) {
        (
            self.dram.reads,
            self.dram.writes,
            self.dram.backpressure_events,
        )
    }

    /// Attaches observability counters to the LLC (idempotent). Only the
    /// metrics-sampling path calls this; when no counters are attached
    /// the arbiter and DRAM paths pay a single `Option` check.
    pub fn enable_obs(&mut self) {
        if self.llc.obs.is_none() {
            self.llc.obs = Some(Box::new(crate::obs::MemObs::new(
                self.cores(),
                self.cfg.dram.regions,
            )));
        }
    }

    /// The observability counters, when attached.
    pub fn obs(&self) -> Option<&crate::obs::MemObs> {
        self.llc.obs.as_deref()
    }

    /// Per-core live-MSHR occupancy, written into `out` (observability
    /// probe).
    pub fn mshr_occupancy(&self, out: &mut Vec<u64>) {
        self.llc.mshr_occupancy(out);
    }

    /// The MSHR quota visible to one core under the active organization.
    pub fn mshr_quota_per_core(&self) -> u64 {
        self.llc.mshr_quota_per_core()
    }

    /// LLC internal queue depths as (cache-access pipeline, DQ, total
    /// UQ entries).
    pub fn llc_queue_depths(&self) -> (usize, usize, usize) {
        self.llc.queue_depths()
    }

    /// Link FIFO depths for one core as (up-req, up-resp, down).
    pub fn link_depths(&self, core: usize) -> (usize, usize, usize) {
        let l = &self.links[core];
        (l.up_req.len(), l.up_resp.len(), l.down.len())
    }

    /// Outstanding DRAM requests.
    pub fn dram_inflight(&self) -> usize {
        self.dram.inflight()
    }

    /// The LLC set index of an address under the active indexing function
    /// (exposed for the PART experiment's working-set analysis).
    pub fn llc_set_index(&self, addr: PhysAddr) -> usize {
        self.llc.set_index(addr.line_base())
    }

    /// The line base address for a byte address.
    pub fn line_of(addr: PhysAddr) -> PhysAddr {
        PhysAddr::new(addr.raw() >> LINE_SHIFT << LINE_SHIFT)
    }
}

/// Folds one FIFO-front ready time into a running next-event minimum.
/// Returns `true` when the front is already due — the consumer acts this
/// cycle, so the caller must report `None` (no skip).
fn merge_front(next: &mut u64, now: u64, front: Option<u64>) -> bool {
    match front {
        Some(t) if t <= now => true,
        Some(t) => {
            *next = (*next).min(t);
            false
        }
        None => false,
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl MemSystem {
    /// Whether the whole hierarchy is idle: no L1 misses in flight, no LLC
    /// MSHR/pipeline/queue entries, no DRAM requests, empty links, and no
    /// undelivered completions. A snapshot taken here can be forked across
    /// LLC organizations.
    pub fn quiescent(&self) -> bool {
        (0..self.cores()).all(|c| self.core_quiescent(c))
            && self.llc.quiescent()
            && self.dram.inflight() == 0
            && self.links.iter().all(CoreLink::is_empty)
            && self
                .completions
                .iter()
                .all(|ports| ports.iter().all(Vec::is_empty))
    }

    /// Serializes the hierarchy's mutable state: physical memory, both L1s
    /// per core, the links, the LLC, DRAM, and undelivered completions.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.cores());
        self.phys.save(w);
        for l1 in self.l1is.iter().chain(&self.l1ds) {
            l1.save_state(w);
        }
        self.links.save(w);
        self.llc.save_state(w);
        self.dram.save(w);
        for ports in &self.completions {
            ports[0].save(w);
            ports[1].save(w);
        }
    }

    /// Restores state saved by [`MemSystem::save_state`] into this
    /// hierarchy. On a cross-configuration fork the LLC re-homes its
    /// lines; any dropped lines are invalidated in the L1s here so the
    /// hierarchy stays inclusive.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::ConfigMismatch`] on geometry mismatches and
    /// [`SnapError::NotQuiescent`] when a cross-configuration snapshot
    /// still has in-flight traffic.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cores = r.usize()?;
        if cores != self.cores() {
            return Err(SnapError::ConfigMismatch {
                what: format!("{cores} cores vs {}", self.cores()),
            });
        }
        let phys = PhysMem::load(r)?;
        if phys.size() != self.phys.size() {
            return Err(SnapError::ConfigMismatch {
                what: format!(
                    "physical memory {} bytes vs {}",
                    phys.size(),
                    self.phys.size()
                ),
            });
        }
        self.phys = phys;
        for i in 0..cores {
            self.l1is[i].restore_state(r)?;
        }
        for i in 0..cores {
            self.l1ds[i].restore_state(r)?;
        }
        let links: Vec<CoreLink> = SnapState::load(r)?;
        if links.len() != cores {
            return Err(SnapError::BadValue {
                what: "link count does not match core count".into(),
            });
        }
        self.links = links;
        let dropped = self.llc.restore_state(r)?;
        let dram = Dram::load(r)?;
        self.dram = dram;
        for i in 0..cores {
            self.completions[i][0] = SnapState::load(r)?;
            self.completions[i][1] = SnapState::load(r)?;
        }
        // Inclusivity after a re-home: lines the LLC could not keep must
        // leave the L1s too (silently — the directory entry is gone).
        for line in dropped {
            for i in 0..cores {
                self.l1is[i].drop_line(line);
                self.l1ds[i].drop_line(line);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(cores: usize) -> MemSystem {
        MemSystem::new(MemConfig::paper_base(), cores)
    }

    /// Issues an access and runs until it completes; returns total cycles.
    fn complete(
        sys: &mut MemSystem,
        now: &mut u64,
        core: usize,
        port: Port,
        addr: u64,
        store: bool,
    ) -> u64 {
        let start = *now;
        let token = 42;
        loop {
            match sys.access(*now, core, port, token, PhysAddr::new(addr), store) {
                L1Access::Hit { ready_at } => {
                    while *now < ready_at {
                        sys.tick(*now);
                        *now += 1;
                    }
                    return *now - start;
                }
                L1Access::Miss => break,
                L1Access::Blocked => {
                    sys.tick(*now);
                    *now += 1;
                }
            }
        }
        loop {
            sys.tick(*now);
            *now += 1;
            let done = sys.take_completions(core, port);
            if done.iter().any(|c| c.token == token) {
                return *now - start;
            }
            assert!(*now - start < 100_000, "access never completed");
        }
    }

    #[test]
    fn cold_miss_then_warm_hit() {
        let mut sys = system(1);
        let mut now = 0;
        let t_cold = complete(&mut sys, &mut now, 0, Port::Data, 0x1_0000, false);
        let t_warm = complete(&mut sys, &mut now, 0, Port::Data, 0x1_0000, false);
        assert!(
            t_cold > 120,
            "cold miss must include DRAM latency, got {t_cold}"
        );
        assert_eq!(t_warm, l1_paper_hit_latency() as u64);
        assert_eq!(sys.l1_stats(0, Port::Data).misses, 1);
        assert_eq!(sys.l1_stats(0, Port::Data).hits, 1);
    }

    fn l1_paper_hit_latency() -> u32 {
        crate::config::L1Config::paper().hit_latency
    }

    #[test]
    fn llc_hit_much_faster_than_dram() {
        let mut sys = system(1);
        let mut now = 0;
        // Warm the LLC via the data port...
        let t_cold = complete(&mut sys, &mut now, 0, Port::Data, 0x2_0000, false);
        // ...then fetch the same line through the I-port: L1I misses but
        // the LLC hits.
        let t_llc = complete(&mut sys, &mut now, 0, Port::IFetch, 0x2_0000, false);
        assert!(t_llc < t_cold / 2, "LLC hit {t_llc} vs cold {t_cold}");
        assert!(t_llc > l1_paper_hit_latency() as u64);
    }

    #[test]
    fn store_then_load_same_line() {
        let mut sys = system(1);
        let mut now = 0;
        complete(&mut sys, &mut now, 0, Port::Data, 0x3_0000, true);
        let t = complete(&mut sys, &mut now, 0, Port::Data, 0x3_0000, false);
        assert_eq!(t, l1_paper_hit_latency() as u64);
    }

    #[test]
    fn flush_then_refetch_misses() {
        let mut sys = system(1);
        let mut now = 0;
        complete(&mut sys, &mut now, 0, Port::Data, 0x4_0000, false);
        sys.start_flush(0);
        while sys.flush_active(0) {
            sys.tick(now);
            now += 1;
        }
        let stats_before = sys.l1_stats(0, Port::Data);
        let t = complete(&mut sys, &mut now, 0, Port::Data, 0x4_0000, false);
        let stats_after = sys.l1_stats(0, Port::Data);
        assert_eq!(stats_after.misses, stats_before.misses + 1);
        // But the line is still in the LLC (L2 keeps de-scheduled domains'
        // lines — Section 6.1), so no DRAM access.
        assert!(t < 60, "refetch after flush should hit LLC, took {t}");
    }

    #[test]
    fn flush_takes_512_cycles() {
        let mut sys = system(1);
        let mut now = 0;
        complete(&mut sys, &mut now, 0, Port::Data, 0x5_0000, false);
        sys.start_flush(0);
        let start = now;
        while sys.flush_active(0) {
            sys.tick(now);
            now += 1;
        }
        assert_eq!(now - start, 512, "paper Section 7.1: 512-cycle flush");
    }

    #[test]
    fn two_cores_independent_lines() {
        let mut sys = system(2);
        let mut now = 0;
        complete(&mut sys, &mut now, 0, Port::Data, 0x10_0000, true);
        complete(&mut sys, &mut now, 1, Port::Data, 0x20_0000, true);
        assert_eq!(sys.l1_stats(0, Port::Data).misses, 1);
        assert_eq!(sys.l1_stats(1, Port::Data).misses, 1);
    }

    #[test]
    fn cross_core_coherence_transfers_ownership() {
        let mut sys = system(2);
        let mut now = 0;
        complete(&mut sys, &mut now, 0, Port::Data, 0x30_0000, true);
        // Core 1 writes the same line: core 0 must be invalidated.
        complete(&mut sys, &mut now, 1, Port::Data, 0x30_0000, true);
        assert!(sys.l1_stats(0, Port::Data).downgrades >= 1);
    }

    #[test]
    fn functional_memory_is_separate() {
        let mut sys = system(1);
        sys.phys.write_u64(PhysAddr::new(0x100), 7);
        assert_eq!(sys.phys.read_u64(PhysAddr::new(0x100)), 7);
        // no timing traffic was generated
        assert_eq!(sys.l1_stats(0, Port::Data).misses, 0);
    }
}
