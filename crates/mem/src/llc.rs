//! The shared last-level cache (LLC).
//!
//! This module implements both LLC microarchitectures from the paper:
//!
//! - **Figure 2 (RiscyOO baseline)**: a shared MSHR pool, a single
//!   upgrade-response queue (UQ), a single Downgrade-L1 logic scanning all
//!   MSHRs, a DQ whose dequeue blocks one extra cycle when an entry sends
//!   both a writeback and a read, and a two-level entry mux with fixed
//!   priority — every one of which Section 5.4.2 identifies as a minor
//!   timing leak.
//! - **Figure 3 (MI6)**: per-core MSHR partitions, per-core merge followed
//!   by a strict round-robin arbiter at the cache-access-pipeline entry,
//!   per-core split UQs, duplicated Downgrade-L1 logic per partition, and
//!   the DQ retry-bit scheme making every dequeue take exactly one cycle.
//!
//! Which behaviour is active is selected field-by-field in [`LlcConfig`],
//! so the evaluation variants (PART / MISS / ARB) and ablations can toggle
//! each mechanism independently.
//!
//! ### Structure
//!
//! Every incoming message — an L1 upgrade request, an L1 downgrade
//! response, or a DRAM response — passes through the cache-access pipeline
//! (latency [`LlcConfig::pipeline_latency`], one entry per cycle, never
//! backpressured) and is handled at the Process stage. Upgrade requests
//! reserve an MSHR *before* entering the pipeline; DRAM responses are
//! buffered in their MSHR, so neither ever backpressures the pipeline
//! (paper Section 5.4.1).

use crate::config::{
    DowngradeOrg, DqOrg, LlcArbitration, LlcConfig, LlcIndexing, MshrOrg, UqOrg, LINE_SHIFT,
};
use crate::dram::{Dram, DramReq};
use crate::link::DelayFifo;
use crate::msi::{ChildId, DowngradeResp, MsiState, ParentMsg, UpgradeReq};
use crate::region::RegionMap;
use mi6_isa::PhysAddr;
use std::collections::VecDeque;

/// A message admitted into the cache-access pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PipeMsg {
    /// Initial processing of an upgrade request (MSHR index).
    Req(u32),
    /// An MSHR re-entering: a buffered DRAM fill, or a retry-bit re-entry.
    Reentry(u32),
    /// An L1 downgrade response (ack or voluntary eviction).
    DownResp(DowngradeResp),
}

/// MSHR life-cycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MshrState {
    /// Waiting for a pipeline entry slot.
    WaitPipe,
    /// Travelling through the cache-access pipeline.
    InPipe,
    /// Blocked on another MSHR (same line or no free way); index recorded.
    Blocked(u32),
    /// Waiting for child downgrade responses.
    WaitDowngrade,
    /// Queued in DQ (DRAM request pending).
    InDq,
    /// DRAM read outstanding.
    WaitDram,
    /// DRAM data buffered in the entry; waiting to re-enter the pipeline.
    FillReady,
    /// Response queued in UQ.
    InUq,
}

/// What the MSHR is trying to do once pending downgrades complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AfterDowngrade {
    /// Grant the request on the already-present line.
    Grant,
    /// Proceed with the replacement of the victim way.
    Replace,
}

#[derive(Clone, Debug)]
struct MshrEntry {
    child: ChildId,
    line: PhysAddr,
    want: MsiState,
    state: MshrState,
    set: usize,
    way: usize,
    /// Replacement writeback still owed to DRAM.
    needs_wb: bool,
    victim_line: PhysAddr,
    /// The line whose downgrade we are waiting on (request line for a
    /// grant, victim line for a replacement).
    wait_line: PhysAddr,
    /// Children we still expect a downgrade response from (bitmap).
    pending_downgrades: u32,
    /// Downgrade requests not yet sent (child, line, to).
    to_downgrade: Vec<(ChildId, PhysAddr, MsiState)>,
    after: AfterDowngrade,
    /// MI6 retry bit (Section 5.4.3): the entry re-enters the pipeline
    /// after sending only the writeback.
    retry: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct LlcLine {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Children holding the line (bitmap by `ChildId::index`).
    sharers: u32,
    /// Exactly one sharer holds M.
    child_m: bool,
    /// Way reserved by an in-flight MSHR.
    locked_by: Option<u32>,
}

/// Counters exported by the LLC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Upgrade requests that hit.
    pub hits: u64,
    /// Upgrade requests that missed (DRAM read issued).
    pub misses: u64,
    /// LLC line evictions (replacements).
    pub evictions: u64,
    /// Writebacks sent to DRAM.
    pub writebacks: u64,
    /// Downgrade requests sent to children.
    pub downgrades_sent: u64,
    /// Cycles an admissible message waited because the round-robin slot
    /// belonged to another core.
    pub arb_wait_cycles: u64,
    /// Messages blocked at Process on a same-line or same-set conflict.
    pub conflicts: u64,
    /// Retry-bit re-entries (MI6 DQ scheme).
    pub dq_retries: u64,
    /// Extra DQ port cycles consumed by two-cycle dequeues (baseline).
    pub dq_double_cycles: u64,
}

/// Per-core link endpoints as seen by the LLC.
///
/// Each core has one link with three FIFOs (paper Figure 1): upgrade
/// requests up, downgrade responses up, and parent messages down. The down
/// FIFO carries the destination child so the core side can route to L1I or
/// L1D.
#[derive(Debug)]
pub struct CoreLink {
    /// L1 → LLC upgrade requests.
    pub up_req: DelayFifo<UpgradeReq>,
    /// L1 → LLC downgrade responses / eviction notifications.
    pub up_resp: DelayFifo<DowngradeResp>,
    /// LLC → L1 upgrade responses and downgrade requests.
    pub down: DelayFifo<(ChildId, ParentMsg)>,
}

impl CoreLink {
    /// Creates a link with the given FIFO capacity and hop latency.
    pub fn new(capacity: usize, latency: u32) -> CoreLink {
        CoreLink {
            up_req: DelayFifo::new(capacity, latency),
            up_resp: DelayFifo::new(capacity, latency),
            down: DelayFifo::new(capacity, latency),
        }
    }
}

/// The last-level cache with its MSHRs, pipeline, queues, and directory.
#[derive(Debug)]
pub struct Llc {
    cfg: LlcConfig,
    cores: usize,
    region_map: RegionMap,
    sets: Vec<Vec<LlcLine>>,
    mshrs: Vec<Option<MshrEntry>>,
    /// (exit cycle, message); one admission per cycle keeps this ordered.
    pipe: VecDeque<(u64, PipeMsg)>,
    /// Upgrade-response queues: one (shared) or one per core.
    uqs: Vec<VecDeque<u32>>,
    dq: VecDeque<u32>,
    /// Baseline two-cycle dequeue: DQ port busy until this cycle.
    dq_port_busy_until: u64,
    /// Rotating scan start for the single Downgrade-L1 logic.
    downgrade_scan: usize,
    set_bits: u32,
    /// Exported statistics.
    pub stats: LlcStats,
}

impl Llc {
    /// Creates an empty LLC for `cores` cores.
    pub fn new(cfg: LlcConfig, cores: usize, region_map: RegionMap) -> Llc {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two());
        let n_mshrs = cfg.mshrs.total(cores);
        let n_uqs = match cfg.uq {
            UqOrg::Shared => 1,
            UqOrg::PerCore => cores,
        };
        Llc {
            cfg,
            cores,
            region_map,
            sets: vec![vec![LlcLine::default(); cfg.ways]; sets],
            mshrs: vec![None; n_mshrs],
            pipe: VecDeque::new(),
            uqs: vec![VecDeque::new(); n_uqs],
            dq: VecDeque::new(),
            dq_port_busy_until: 0,
            downgrade_scan: 0,
            set_bits: sets.trailing_zeros(),
            stats: LlcStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Computes the set index for a line address under the configured
    /// indexing function (paper Section 7.2: BASE uses `A[set_bits-1:0]`
    /// of the line index; PART replaces the top `region_bits` with the low
    /// bits of the DRAM-region ID).
    pub fn set_index(&self, line: PhysAddr) -> usize {
        let line_index = line.raw() >> LINE_SHIFT;
        match self.cfg.indexing {
            LlcIndexing::Base => (line_index & ((1 << self.set_bits) - 1)) as usize,
            LlcIndexing::Partitioned { region_bits } => {
                let low_bits = self.set_bits - region_bits;
                let region = self.region_map.region_of(line).0 as u64;
                let low = line_index & ((1 << low_bits) - 1);
                (((region & ((1 << region_bits) - 1)) << low_bits) | low) as usize
            }
        }
    }

    fn tag_of(&self, line: PhysAddr) -> u64 {
        line.raw() >> LINE_SHIFT
    }

    /// MSHR bank for a set index (MISS model).
    fn bank_of(&self, set: usize, banks: usize) -> usize {
        set & (banks - 1)
    }

    fn find_free_mshr(&self, core: usize, set: usize) -> Option<usize> {
        match self.cfg.mshrs {
            MshrOrg::Shared { .. } => self.mshrs.iter().position(Option::is_none),
            MshrOrg::PerCore { per_core } => {
                let base = core * per_core;
                (base..base + per_core).find(|&i| self.mshrs[i].is_none())
            }
            MshrOrg::Banked { total, banks } => {
                // Entries are striped across banks: entry i belongs to bank
                // i % banks. A request may only use an entry of its bank.
                let bank = self.bank_of(set, banks);
                (0..total).find(|&i| i % banks == bank && self.mshrs[i].is_none())
            }
        }
    }

    /// Accepts upgrade requests from the per-core links into MSHRs.
    fn accept_requests(&mut self, now: u64, links: &mut [CoreLink]) {
        for (core, link) in links.iter_mut().enumerate() {
            // Head-of-line: only the head request of each core's FIFO is a
            // candidate; if it cannot allocate, the FIFO stalls.
            let Some(req) = link.up_req.peek(now).copied() else {
                continue;
            };
            let set = self.set_index(req.line);
            let Some(idx) = self.find_free_mshr(core, set) else {
                // In the banked (MISS) model a full target bank stalls the
                // whole structure: stop accepting from every core.
                if matches!(self.cfg.mshrs, MshrOrg::Banked { .. }) {
                    break;
                }
                continue;
            };
            let popped = link.up_req.pop(now);
            debug_assert!(popped.is_some());
            self.mshrs[idx] = Some(MshrEntry {
                child: req.child,
                line: req.line,
                want: req.want,
                state: MshrState::WaitPipe,
                set,
                way: usize::MAX,
                needs_wb: false,
                victim_line: PhysAddr::new(0),
                wait_line: PhysAddr::new(0),
                pending_downgrades: 0,
                to_downgrade: Vec::new(),
                after: AfterDowngrade::Grant,
                retry: false,
            });
        }
    }

    /// Picks at most one message to admit into the cache-access pipeline.
    fn arbitrate_entry(&mut self, now: u64, links: &mut [CoreLink]) {
        let pick_for_core = |llc: &Llc, links: &mut [CoreLink], core: usize| -> Option<PipeMsg> {
            // Local priority: downgrade responses, then buffered fills /
            // retries, then fresh upgrade requests.
            if links[core].up_resp.peek(now).is_some() {
                let resp = links[core].up_resp.pop(now).expect("peeked");
                return Some(PipeMsg::DownResp(resp));
            }
            for (i, slot) in llc.mshrs.iter().enumerate() {
                if let Some(m) = slot {
                    if m.child.core() == core && m.state == MshrState::FillReady {
                        return Some(PipeMsg::Reentry(i as u32));
                    }
                }
            }
            for (i, slot) in llc.mshrs.iter().enumerate() {
                if let Some(m) = slot {
                    if m.child.core() == core && m.state == MshrState::WaitPipe {
                        return Some(if m.retry {
                            PipeMsg::Reentry(i as u32)
                        } else {
                            PipeMsg::Req(i as u32)
                        });
                    }
                }
            }
            None
        };

        let msg = match self.cfg.arbitration {
            LlcArbitration::RoundRobin => {
                // Cycle T belongs to core T % N, even if that core is idle.
                let turn = (now % self.cores as u64) as usize;
                let chosen = pick_for_core(self, links, turn);
                if chosen.is_none() {
                    // Count cycles where *some other* core had a message
                    // but the slot went idle — the arbiter's latency cost.
                    let someone_waiting = (0..self.cores).any(|c| {
                        c != turn
                            && (links[c].up_resp.peek(now).is_some()
                                || self.mshrs.iter().flatten().any(|m| {
                                    m.child.core() == c
                                        && matches!(
                                            m.state,
                                            MshrState::WaitPipe | MshrState::FillReady
                                        )
                                }))
                    });
                    if someone_waiting {
                        self.stats.arb_wait_cycles += 1;
                    }
                }
                chosen
            }
            LlcArbitration::Base => {
                // Two-level mux: merge by type, fixed priority across types
                // (downgrade responses > fills > requests), fixed child
                // order within a type. Admits whenever anything is pending.
                let mut chosen = None;
                for link in links.iter_mut() {
                    if link.up_resp.peek(now).is_some() {
                        chosen = Some(PipeMsg::DownResp(link.up_resp.pop(now).expect("peeked")));
                        break;
                    }
                }
                if chosen.is_none() {
                    chosen = self
                        .mshrs
                        .iter()
                        .position(|m| {
                            m.as_ref()
                                .is_some_and(|m| m.state == MshrState::FillReady)
                        })
                        .map(|i| PipeMsg::Reentry(i as u32));
                }
                if chosen.is_none() {
                    chosen = self.mshrs.iter().enumerate().find_map(|(i, m)| {
                        m.as_ref().and_then(|m| {
                            (m.state == MshrState::WaitPipe).then_some(if m.retry {
                                PipeMsg::Reentry(i as u32)
                            } else {
                                PipeMsg::Req(i as u32)
                            })
                        })
                    });
                }
                chosen
            }
        };
        if let Some(msg) = msg {
            if let PipeMsg::Req(i) | PipeMsg::Reentry(i) = msg {
                let entry = self.mshrs[i as usize].as_mut().expect("live MSHR");
                entry.state = MshrState::InPipe;
            }
            self.pipe
                .push_back((now + self.cfg.pipeline_latency as u64, msg));
        }
    }

    /// Process stage at the pipeline exit: at most one message per cycle.
    fn process_exit(&mut self, now: u64) {
        let Some(&(ready, msg)) = self.pipe.front() else {
            return;
        };
        if ready > now {
            return;
        }
        self.pipe.pop_front();
        match msg {
            PipeMsg::DownResp(resp) => self.process_down_resp(resp),
            PipeMsg::Req(m) => self.process_request(m),
            PipeMsg::Reentry(m) => self.process_reentry(m),
        }
    }

    fn process_down_resp(&mut self, resp: DowngradeResp) {
        // Update the directory.
        let set = self.set_index(resp.line);
        let tag = self.tag_of(resp.line);
        if let Some(way) = self.sets[set]
            .iter()
            .position(|l| l.valid && l.tag == tag)
        {
            let line = &mut self.sets[set][way];
            let bit = 1u32 << resp.child.index();
            if resp.now == MsiState::I {
                line.sharers &= !bit;
            }
            // The M owner is always the sole sharer, so after its
            // downgrade either the sharer set is empty (to I) or it was
            // demoted in place (to S).
            if line.child_m && (line.sharers == 0 || resp.now == MsiState::S) {
                line.child_m = false;
            }
            if resp.dirty {
                line.dirty = true;
            }
        }
        // Wake MSHRs waiting on this downgrade (request or voluntary).
        let bit = 1u32 << resp.child.index();
        let mut to_continue = Vec::new();
        for (i, slot) in self.mshrs.iter_mut().enumerate() {
            if let Some(m) = slot {
                if m.state == MshrState::WaitDowngrade
                    && m.wait_line == resp.line
                    && m.pending_downgrades & bit != 0
                {
                    m.pending_downgrades &= !bit;
                    // Also cancel an unsent downgrade to this child.
                    m.to_downgrade.retain(|&(c, _, _)| c != resp.child);
                    if m.pending_downgrades == 0 {
                        to_continue.push(i as u32);
                    }
                }
            }
        }
        for m in to_continue {
            self.after_downgrades(m);
        }
    }

    fn after_downgrades(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        match entry.after {
            AfterDowngrade::Grant => self.grant(m),
            AfterDowngrade::Replace => {
                let (set, way) = (entry.set, entry.way);
                let line = &mut self.sets[set][way];
                debug_assert!(line.sharers == 0, "victim still shared");
                let dirty = line.dirty;
                let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                if dirty {
                    entry.needs_wb = true;
                    self.stats.writebacks += 1;
                }
                self.stats.evictions += 1;
                // Invalidate the victim; the way stays locked for the fill.
                let line = &mut self.sets[set][way];
                line.valid = false;
                line.dirty = false;
                line.child_m = false;
                self.enqueue_dq(m);
            }
        }
    }

    fn enqueue_dq(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
        entry.state = MshrState::InDq;
        self.dq.push_back(m);
        debug_assert!(self.dq.len() <= self.mshrs.len(), "DQ sized to MSHR count");
    }

    fn enqueue_uq(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
        entry.state = MshrState::InUq;
        let qi = match self.cfg.uq {
            UqOrg::Shared => 0,
            UqOrg::PerCore => entry.child.core(),
        };
        self.uqs[qi].push_back(m);
        let total: usize = self.uqs.iter().map(VecDeque::len).sum();
        debug_assert!(total <= self.mshrs.len(), "UQs sized to MSHR count");
    }

    /// Grants the request: the line is present and all conflicting child
    /// copies have been downgraded. Updates the directory and queues the
    /// upgrade response.
    fn grant(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        let (set, way, child, want) = (entry.set, entry.way, entry.child, entry.want);
        let line = &mut self.sets[set][way];
        debug_assert!(line.valid);
        let bit = 1u32 << child.index();
        match want {
            MsiState::S => {
                debug_assert!(!line.child_m || line.sharers == bit);
                line.sharers |= bit;
            }
            MsiState::M => {
                debug_assert!(line.sharers & !bit == 0, "other sharers remain");
                line.sharers = bit;
                line.child_m = true;
            }
            MsiState::I => unreachable!("no request downgrades itself"),
        }
        self.enqueue_uq(m);
    }

    /// Initial processing of an upgrade request at the Process stage.
    fn process_request(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        let (line_addr, set, child, want) = (entry.line, entry.set, entry.child, entry.want);
        let tag = self.tag_of(line_addr);

        // Conflict: another MSHR holds (or is ahead in line for) the same
        // line. Block on it when it already *owns* a transaction (passed
        // Process), or — to serialize two not-yet-processed same-line
        // entries without creating a blocking cycle — when it has the
        // lower MSHR index. Lower indices never block on higher
        // non-owning ones, so chains always terminate at an owning entry
        // or a processable one.
        let owning = |s: MshrState| {
            matches!(
                s,
                MshrState::WaitDowngrade
                    | MshrState::InDq
                    | MshrState::WaitDram
                    | MshrState::FillReady
                    | MshrState::InUq
            )
        };
        if let Some(other) = self.mshrs.iter().enumerate().position(|(i, o)| {
            i != m as usize
                && o.as_ref().is_some_and(|o| {
                    o.line == line_addr && (owning(o.state) || i < m as usize)
                })
        }) {
            let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
            entry.state = MshrState::Blocked(other as u32);
            self.stats.conflicts += 1;
            return;
        }

        if let Some(way) = self.sets[set].iter().position(|l| l.valid && l.tag == tag) {
            // Hit. Check whether the way is locked by another MSHR's
            // replacement (shouldn't happen for a valid line, but a fill
            // in flight locks its way while invalid).
            if let Some(locker) = self.sets[set][way].locked_by {
                if locker != m {
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.state = MshrState::Blocked(locker);
                    self.stats.conflicts += 1;
                    return;
                }
            }
            self.stats.hits += 1;
            let line = &self.sets[set][way];
            let bit = 1u32 << child.index();
            // Which children must downgrade before we can grant?
            let mut to_downgrade = Vec::new();
            let conflicting = match want {
                MsiState::S => {
                    if line.child_m && line.sharers & !bit != 0 {
                        line.sharers & !bit
                    } else {
                        0
                    }
                }
                MsiState::M => line.sharers & !bit,
                MsiState::I => unreachable!(),
            };
            if conflicting != 0 {
                let to = if want == MsiState::M { MsiState::I } else { MsiState::S };
                for c in 0..32 {
                    if conflicting >> c & 1 != 0 {
                        to_downgrade.push((ChildId(c as u16), line_addr, to));
                    }
                }
                let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                entry.way = way;
                entry.state = MshrState::WaitDowngrade;
                entry.wait_line = line_addr;
                entry.pending_downgrades = conflicting;
                entry.to_downgrade = to_downgrade;
                entry.after = AfterDowngrade::Grant;
                return;
            }
            let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
            entry.way = way;
            self.grant(m);
            return;
        }

        // Miss.
        self.stats.misses += 1;
        // Free (invalid, unlocked) way?
        if let Some(way) = self.sets[set]
            .iter()
            .position(|l| !l.valid && l.locked_by.is_none())
        {
            let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
            entry.way = way;
            self.sets[set][way].locked_by = Some(m);
            self.enqueue_dq(m);
            return;
        }
        // Replacement: pick an unlocked victim (lowest way; the LLC has no
        // replacement metadata worth modelling — RiscyOO uses pseudo-random
        // and the set-partitioning evaluation is insensitive to it).
        let Some(way) = self.sets[set]
            .iter()
            .position(|l| l.locked_by.is_none())
        else {
            // Every way locked by in-flight fills: block on the first.
            let locker = self.sets[set][0].locked_by.expect("all locked");
            let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
            entry.state = MshrState::Blocked(locker);
            self.stats.conflicts += 1;
            return;
        };
        let victim = self.sets[set][way];
        let victim_line = PhysAddr::new(
            // Reconstruct the victim address from its tag (the tag is the
            // full line index).
            victim.tag << LINE_SHIFT,
        );
        self.sets[set][way].locked_by = Some(m);
        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
        entry.way = way;
        entry.victim_line = victim_line;
        if victim.sharers != 0 {
            // Inclusive: children must drop the victim first.
            let mut to_downgrade = Vec::new();
            for c in 0..32 {
                if victim.sharers >> c & 1 != 0 {
                    to_downgrade.push((ChildId(c as u16), victim_line, MsiState::I));
                }
            }
            entry.state = MshrState::WaitDowngrade;
            entry.wait_line = victim_line;
            entry.pending_downgrades = victim.sharers;
            entry.to_downgrade = to_downgrade;
            entry.after = AfterDowngrade::Replace;
        } else {
            entry.after = AfterDowngrade::Replace;
            entry.pending_downgrades = 0;
            self.after_downgrades(m);
        }
    }

    /// Re-entry processing: a DRAM fill completing, or a retry-bit entry
    /// coming back as a pure miss.
    fn process_reentry(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
        if entry.retry {
            // Retry-bit path: the writeback has been sent; re-issue as a
            // pure miss (the way is still locked for us).
            entry.retry = false;
            entry.needs_wb = false;
            self.stats.dq_retries += 1;
            self.enqueue_dq(m);
            return;
        }
        // Fill: install the line and grant.
        let (set, way, child, want, line_addr) =
            (entry.set, entry.way, entry.child, entry.want, entry.line);
        let tag = self.tag_of(line_addr);
        let line = &mut self.sets[set][way];
        debug_assert_eq!(line.locked_by, Some(m));
        line.tag = tag;
        line.valid = true;
        line.dirty = false;
        line.sharers = 1u32 << child.index();
        line.child_m = want == MsiState::M;
        self.enqueue_uq(m);
    }

    /// UQ dequeue: sends upgrade responses to the cores. Returns which
    /// core ports were used this cycle (downgrade requests contend for the
    /// remainder — paper Section 5.4.2 "UQ and Downgrade requests").
    fn dequeue_uq(&mut self, now: u64, links: &mut [CoreLink]) -> Vec<bool> {
        let mut port_used = vec![false; self.cores];
        let mut freed = Vec::new();
        match self.cfg.uq {
            UqOrg::Shared => {
                // One dequeue attempt per cycle; head-of-line blocking
                // across cores is possible (the Section 5.4.2 leak): if
                // the head's core port is busy, responses to other cores
                // behind it wait too.
                if let Some(&m) = self.uqs[0].front() {
                    if self.try_send_upgrade_resp(now, links, m, &mut port_used) {
                        self.uqs[0].pop_front();
                        freed.push(m);
                    }
                }
            }
            UqOrg::PerCore => {
                for qi in 0..self.uqs.len() {
                    if let Some(&m) = self.uqs[qi].front() {
                        if self.try_send_upgrade_resp(now, links, m, &mut port_used) {
                            self.uqs[qi].pop_front();
                            freed.push(m);
                        }
                    }
                }
            }
        }
        for m in freed {
            self.free_mshr(m);
        }
        port_used
    }

    fn try_send_upgrade_resp(
        &mut self,
        now: u64,
        links: &mut [CoreLink],
        m: u32,
        port_used: &mut [bool],
    ) -> bool {
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        let core = entry.child.core();
        if port_used[core] || !links[core].down.can_push() {
            return false;
        }
        let msg = (
            entry.child,
            ParentMsg::UpgradeResp {
                line: entry.line,
                granted: entry.want,
            },
        );
        let pushed = links[core].down.push(now, msg);
        debug_assert!(pushed);
        port_used[core] = true;
        true
    }

    fn free_mshr(&mut self, m: u32) {
        let entry = self.mshrs[m as usize].take().expect("double free");
        if entry.way != usize::MAX {
            let line = &mut self.sets[entry.set][entry.way];
            if line.locked_by == Some(m) {
                line.locked_by = None;
            }
        }
        // Wake MSHRs blocked on us.
        for slot in self.mshrs.iter_mut() {
            if let Some(o) = slot {
                if o.state == MshrState::Blocked(m) {
                    o.state = MshrState::WaitPipe;
                }
            }
        }
    }

    /// The Downgrade-L1 logic: sends downgrade requests to children over
    /// the remaining port budget.
    fn send_downgrades(&mut self, now: u64, links: &mut [CoreLink], port_used: &mut [bool]) {
        let n = self.mshrs.len();
        match self.cfg.downgrade {
            DowngradeOrg::Single => {
                // One request per cycle from a rotating scan over all
                // MSHRs (the unfair arbitration Section 5.4.2 warns about
                // is modeled by the scan order itself).
                for off in 0..n {
                    let i = (self.downgrade_scan + off) % n;
                    if self.try_send_one_downgrade(now, links, i, port_used) {
                        self.downgrade_scan = (i + 1) % n;
                        return;
                    }
                }
            }
            DowngradeOrg::PerPartition => {
                // Duplicated logic: one request per cycle per partition.
                let parts: Vec<(usize, usize)> = match self.cfg.mshrs {
                    MshrOrg::PerCore { per_core } => (0..self.cores)
                        .map(|c| (c * per_core, (c + 1) * per_core))
                        .collect(),
                    // Degenerate fallback: treat the whole pool as one
                    // partition (configuration mixes are allowed in
                    // ablations).
                    _ => vec![(0, n)],
                };
                for (lo, hi) in parts {
                    for i in lo..hi {
                        if self.try_send_one_downgrade(now, links, i, port_used) {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn try_send_one_downgrade(
        &mut self,
        now: u64,
        links: &mut [CoreLink],
        i: usize,
        port_used: &mut [bool],
    ) -> bool {
        let Some(entry) = self.mshrs[i].as_mut() else {
            return false;
        };
        if entry.state != MshrState::WaitDowngrade || entry.to_downgrade.is_empty() {
            return false;
        }
        let (child, line, to) = entry.to_downgrade[0];
        let core = child.core();
        if port_used[core] || !links[core].down.can_push() {
            return false;
        }
        let pushed = links[core]
            .down
            .push(now, (child, ParentMsg::DowngradeReq { line, to }));
        debug_assert!(pushed);
        port_used[core] = true;
        entry.to_downgrade.remove(0);
        self.stats.downgrades_sent += 1;
        true
    }

    /// DQ dequeue: sends DRAM requests.
    fn dequeue_dq(&mut self, now: u64, dram: &mut Dram) {
        if now < self.dq_port_busy_until {
            return;
        }
        let Some(&m) = self.dq.front() else {
            return;
        };
        let entry = self.mshrs[m as usize].as_ref().expect("live MSHR");
        let (needs_wb, victim_line, line) = (entry.needs_wb, entry.victim_line, entry.line);
        match self.cfg.dq {
            DqOrg::TwoCycleDequeue => {
                if needs_wb {
                    // Send writeback and read together; the port blocks one
                    // extra cycle (the Section 5.4.2 DQ leak).
                    if !dram.can_accept() {
                        return; // DRAM backpressure: retry next cycle
                    }
                    let ok = dram.submit(
                        now,
                        DramReq { line: victim_line, is_write: true, tag: m },
                    );
                    debug_assert!(ok);
                    if !dram.can_accept() {
                        // Second request refused: keep the entry at the
                        // head with the writeback already sent.
                        let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                        entry.needs_wb = false;
                        return;
                    }
                    let ok = dram.submit(now, DramReq { line, is_write: false, tag: m });
                    debug_assert!(ok);
                    self.dq.pop_front();
                    self.dq_port_busy_until = now + 2;
                    self.stats.dq_double_cycles += 1;
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.needs_wb = false;
                    entry.state = MshrState::WaitDram;
                } else {
                    if !dram.can_accept() {
                        return;
                    }
                    let ok = dram.submit(now, DramReq { line, is_write: false, tag: m });
                    debug_assert!(ok);
                    self.dq.pop_front();
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.state = MshrState::WaitDram;
                }
            }
            DqOrg::RetryBit => {
                if !dram.can_accept() {
                    return;
                }
                if needs_wb {
                    // Send only the writeback; set the retry bit and
                    // re-enter the pipeline as a pure miss. Dequeue takes
                    // exactly one cycle (Section 5.4.3).
                    let ok = dram.submit(
                        now,
                        DramReq { line: victim_line, is_write: true, tag: m },
                    );
                    debug_assert!(ok);
                    self.dq.pop_front();
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.retry = true;
                    entry.state = MshrState::WaitPipe;
                } else {
                    let ok = dram.submit(now, DramReq { line, is_write: false, tag: m });
                    debug_assert!(ok);
                    self.dq.pop_front();
                    let entry = self.mshrs[m as usize].as_mut().expect("live MSHR");
                    entry.state = MshrState::WaitDram;
                }
            }
        }
    }

    /// One LLC cycle. `links` is indexed by core. DRAM responses are
    /// collected, the Process stage runs, queues drain, new requests are
    /// accepted, and the entry arbiter admits at most one message.
    pub fn tick(&mut self, now: u64, links: &mut [CoreLink], dram: &mut Dram) {
        debug_assert_eq!(links.len(), self.cores);
        // DRAM responses: buffered into their MSHR, never backpressured.
        for resp in dram.tick(now) {
            let entry = self.mshrs[resp.tag as usize]
                .as_mut()
                .expect("DRAM response for a freed MSHR");
            debug_assert_eq!(entry.state, MshrState::WaitDram);
            debug_assert_eq!(entry.line, resp.line);
            entry.state = MshrState::FillReady;
        }
        self.process_exit(now);
        let mut port_used = self.dequeue_uq(now, links);
        self.send_downgrades(now, links, &mut port_used);
        self.dequeue_dq(now, dram);
        self.accept_requests(now, links);
        self.arbitrate_entry(now, links);
    }

    /// Applies an L1 purge-flush invalidation directly to the directory.
    ///
    /// During a purge the core is stalled and, under MI6's invariants, no
    /// other traffic from that core is in flight, so the notification is
    /// applied out of band rather than through the cache-access pipeline;
    /// the paper's 512-cycle flush figure (Section 7.1) counts the L1
    /// sweep, with the LLC absorbing one eviction per cycle in parallel.
    pub fn flush_notify(&mut self, child: ChildId, line: PhysAddr, dirty: bool) {
        let set = self.set_index(line);
        let tag = self.tag_of(line);
        if let Some(way) = self.sets[set].iter().position(|l| l.valid && l.tag == tag) {
            let entry = &mut self.sets[set][way];
            entry.sharers &= !(1u32 << child.index());
            if entry.sharers == 0 {
                entry.child_m = false;
            }
            if dirty {
                entry.dirty = true;
            }
        }
    }

    /// Whether the LLC has no in-flight work (test aid).
    pub fn quiescent(&self) -> bool {
        self.mshrs.iter().all(Option::is_none)
            && self.pipe.is_empty()
            && self.dq.is_empty()
            && self.uqs.iter().all(VecDeque::is_empty)
    }

    /// Directory probe for tests: the set of children holding a line.
    pub fn probe_sharers(&self, line: PhysAddr) -> u32 {
        let set = self.set_index(line);
        let tag = self.tag_of(line);
        self.sets[set]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.sharers)
            .unwrap_or(0)
    }

    /// Whether a line is resident in the LLC (test aid).
    pub fn contains(&self, line: PhysAddr) -> bool {
        let set = self.set_index(line);
        let tag = self.tag_of(line);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramConfig, LINK_CAPACITY};

    const LAT: u32 = 0; // zero link latency makes cycle math exact

    struct Rig {
        llc: Llc,
        links: Vec<CoreLink>,
        dram: Dram,
        now: u64,
    }

    impl Rig {
        fn new(cfg: LlcConfig, cores: usize) -> Rig {
            let dram_cfg = DramConfig::paper();
            Rig {
                llc: Llc::new(cfg, cores, RegionMap::new(&dram_cfg)),
                links: (0..cores).map(|_| CoreLink::new(LINK_CAPACITY, LAT)).collect(),
                dram: Dram::new(&dram_cfg),
                now: 0,
            }
        }

        fn request(&mut self, core: usize, line: u64, want: MsiState) {
            let child = ChildId::l1d(core);
            let ok = self.links[core].up_req.push(
                self.now,
                UpgradeReq { child, line: PhysAddr::new(line), want },
            );
            assert!(ok, "request fifo full");
        }

        fn tick(&mut self) {
            self.llc.tick(self.now, &mut self.links, &mut self.dram);
            self.now += 1;
        }

        /// Runs until `core` receives an upgrade response for `line`, or
        /// panics after `limit` cycles. Returns the arrival cycle.
        fn run_until_resp(&mut self, core: usize, line: u64, limit: u64) -> u64 {
            let deadline = self.now + limit;
            while self.now < deadline {
                self.tick();
                if let Some(&(_, msg)) = self.links[core].down.peek(self.now) {
                    if let ParentMsg::UpgradeResp { line: l, .. } = msg {
                        if l == PhysAddr::new(line) {
                            let _ = self.links[core].down.pop(self.now);
                            return self.now;
                        }
                    }
                    // Drain other messages (downgrade reqs handled by tests
                    // that need them).
                    let _ = self.links[core].down.pop(self.now);
                }
            }
            panic!("no response for line {line:#x} within {limit} cycles");
        }
    }

    #[test]
    fn miss_fills_from_dram_and_hits_after() {
        let mut rig = Rig::new(LlcConfig::paper_base(), 1);
        rig.request(0, 0x4_0000, MsiState::S);
        let t_miss = rig.run_until_resp(0, 0x4_0000, 400);
        // Miss cost at least the DRAM latency.
        assert!(t_miss >= 120, "miss too fast: {t_miss}");
        assert_eq!(rig.llc.stats.misses, 1);
        assert!(rig.llc.contains(PhysAddr::new(0x4_0000)));
        // Second access from the same child after eviction from its L1:
        // the L1 would have it, but model a re-request (e.g. I-cache).
        let start = rig.now;
        rig.request(0, 0x4_0000, MsiState::S);
        let t_hit = rig.run_until_resp(0, 0x4_0000, 400) - start;
        assert!(t_hit < 30, "hit too slow: {t_hit}");
        assert_eq!(rig.llc.stats.hits, 1);
    }

    #[test]
    fn store_request_grants_m_and_tracks_directory() {
        let mut rig = Rig::new(LlcConfig::paper_base(), 1);
        rig.request(0, 0x8000, MsiState::M);
        rig.run_until_resp(0, 0x8000, 400);
        assert_eq!(
            rig.llc.probe_sharers(PhysAddr::new(0x8000)),
            1 << ChildId::l1d(0).index()
        );
    }

    #[test]
    fn second_core_store_downgrades_first() {
        let mut rig = Rig::new(LlcConfig::paper_base(), 2);
        rig.request(0, 0x8000, MsiState::M);
        rig.run_until_resp(0, 0x8000, 400);
        // Core 1 wants the same line M: LLC must downgrade core 0 first.
        rig.request(1, 0x8000, MsiState::M);
        // Run until core 0 sees the downgrade request, then ack it.
        let mut acked = false;
        for _ in 0..200 {
            rig.tick();
            if let Some(&(child, msg)) = rig.links[0].down.peek(rig.now) {
                if let ParentMsg::DowngradeReq { line, to } = msg {
                    assert_eq!(line, PhysAddr::new(0x8000));
                    assert_eq!(to, MsiState::I);
                    let _ = rig.links[0].down.pop(rig.now);
                    let ok = rig.links[0].up_resp.push(
                        rig.now,
                        DowngradeResp { child, line, now: MsiState::I, dirty: true },
                    );
                    assert!(ok);
                    acked = true;
                    break;
                }
            }
        }
        assert!(acked, "no downgrade request reached core 0");
        rig.run_until_resp(1, 0x8000, 400);
        assert_eq!(
            rig.llc.probe_sharers(PhysAddr::new(0x8000)),
            1 << ChildId::l1d(1).index()
        );
        assert_eq!(rig.llc.stats.downgrades_sent, 1);
    }

    #[test]
    fn replacement_writes_back_dirty_victim() {
        // Fill all 16 ways of one set, dirty one line, then force a 17th.
        let mut rig = Rig::new(LlcConfig::paper_base(), 1);
        let sets = LlcConfig::paper_base().sets() as u64; // 1024
        let stride = sets * 64;
        // Use want=M then "write back" via voluntary eviction so the LLC
        // copy becomes dirty.
        rig.request(0, 0, MsiState::M);
        rig.run_until_resp(0, 0, 2000);
        let ok = rig.links[0].up_resp.push(
            rig.now,
            DowngradeResp {
                child: ChildId::l1d(0),
                line: PhysAddr::new(0),
                now: MsiState::I,
                dirty: true,
            },
        );
        assert!(ok);
        for w in 1..16u64 {
            rig.request(0, w * stride, MsiState::S);
            rig.run_until_resp(0, w * stride, 2000);
            // Evict from L1 so the directory shows no sharers.
            let ok = rig.links[0].up_resp.push(
                rig.now,
                DowngradeResp {
                    child: ChildId::l1d(0),
                    line: PhysAddr::new(w * stride),
                    now: MsiState::I,
                    dirty: false,
                },
            );
            assert!(ok);
        }
        // Let the evictions drain through the pipeline.
        for _ in 0..200 {
            rig.tick();
        }
        let wb_before = rig.dram.writes;
        rig.request(0, 16 * stride, MsiState::S);
        rig.run_until_resp(0, 16 * stride, 2000);
        assert_eq!(rig.llc.stats.evictions, 1);
        // One of the 16 victims was the dirty line only if it was chosen;
        // way 0 (the dirty one) is chosen by the lowest-way policy.
        assert_eq!(rig.dram.writes, wb_before + 1, "dirty victim written back");
        assert_eq!(rig.llc.stats.writebacks, 1);
    }

    #[test]
    fn retry_bit_takes_single_cycle_dequeues() {
        let mut base = Rig::new(LlcConfig::paper_base(), 1);
        let mut cfg = LlcConfig::paper_base();
        cfg.dq = DqOrg::RetryBit;
        let mut secure = Rig::new(cfg, 1);
        for rig in [&mut base, &mut secure] {
            let sets = LlcConfig::paper_base().sets() as u64;
            let stride = sets * 64;
            rig.request(0, 0, MsiState::M);
            rig.run_until_resp(0, 0, 2000);
            let ok = rig.links[0].up_resp.push(
                rig.now,
                DowngradeResp {
                    child: ChildId::l1d(0),
                    line: PhysAddr::new(0),
                    now: MsiState::I,
                    dirty: true,
                },
            );
            assert!(ok);
            for w in 1..16u64 {
                rig.request(0, w * stride, MsiState::S);
                rig.run_until_resp(0, w * stride, 2000);
                let ok = rig.links[0].up_resp.push(
                    rig.now,
                    DowngradeResp {
                        child: ChildId::l1d(0),
                        line: PhysAddr::new(w * stride),
                        now: MsiState::I,
                        dirty: false,
                    },
                );
                assert!(ok);
            }
            for _ in 0..200 {
                rig.tick();
            }
            rig.request(0, 16 * stride, MsiState::S);
            rig.run_until_resp(0, 16 * stride, 3000);
        }
        assert_eq!(base.llc.stats.dq_double_cycles, 1);
        assert_eq!(base.llc.stats.dq_retries, 0);
        assert_eq!(secure.llc.stats.dq_double_cycles, 0);
        assert_eq!(secure.llc.stats.dq_retries, 1);
    }

    #[test]
    fn per_core_mshrs_isolate_capacity() {
        // Core 0 saturates its partition; core 1's single miss must still
        // be accepted immediately.
        let cfg = LlcConfig::paper_secure(2, 24); // 6 MSHRs per core
        let mut rig = Rig::new(cfg, 2);
        // 6 outstanding misses for core 0 (distinct region-0 lines).
        let mut big = CoreLink::new(16, LAT);
        std::mem::swap(&mut rig.links[0], &mut big);
        for i in 0..6u64 {
            rig.request(0, 0x10000 + i * 64, MsiState::S);
        }
        // A 7th core-0 request must wait for a free partition slot, but a
        // core-1 request sails through.
        rig.request(0, 0x20000, MsiState::S);
        rig.request(1, 0x100_0000 * 4, MsiState::S); // a different region
        rig.run_until_resp(1, 0x100_0000 * 4, 1000);
        // Core-0's 7th is still pending behind its partition.
        assert!(rig.links[0].up_req.len() > 0 || !rig.llc.quiescent());
    }

    #[test]
    fn partitioned_index_maps_regions_to_disjoint_sets() {
        let cfg = LlcConfig::paper_secure(2, 24);
        let dram_cfg = DramConfig::paper();
        let llc = Llc::new(cfg, 2, RegionMap::new(&dram_cfg));
        // Addresses in region 0 and region 1 must land in disjoint sets
        // when the regions differ in their low 2 bits.
        let region_bytes = dram_cfg.region_bytes();
        let mut sets0 = std::collections::HashSet::new();
        let mut sets1 = std::collections::HashSet::new();
        for i in 0..4096u64 {
            sets0.insert(llc.set_index(PhysAddr::new(i * 64)));
            sets1.insert(llc.set_index(PhysAddr::new(region_bytes + i * 64)));
        }
        assert!(sets0.is_disjoint(&sets1));
        // Regions 4k and 4k+4 share low bits and thus sets (an enclave can
        // claim multiple aligned regions to grow its share).
        let s0 = llc.set_index(PhysAddr::new(0));
        let s4 = llc.set_index(PhysAddr::new(4 * region_bytes));
        assert_eq!(s0, s4);
    }

    #[test]
    fn base_index_uses_low_bits() {
        let llc = Llc::new(LlcConfig::paper_base(), 1, RegionMap::new(&DramConfig::paper()));
        assert_eq!(llc.set_index(PhysAddr::new(0)), 0);
        assert_eq!(llc.set_index(PhysAddr::new(64)), 1);
        assert_eq!(llc.set_index(PhysAddr::new(1023 * 64)), 1023);
        assert_eq!(llc.set_index(PhysAddr::new(1024 * 64)), 0);
    }

    #[test]
    fn round_robin_slot_gating() {
        // With RR arbitration and 2 cores, a core-1 message arriving in
        // core 0's slot waits exactly one cycle.
        let mut cfg = LlcConfig::paper_base();
        cfg.arbitration = LlcArbitration::RoundRobin;
        let mut rig = Rig::new(cfg, 2);
        rig.request(1, 0x40, MsiState::S);
        let t = rig.run_until_resp(1, 0x40, 500);
        // Now repeat, shifted by one cycle: latency must be identical
        // modulo the slot alignment — i.e. the response time depends only
        // on the request's phase, not on core 0's activity.
        let mut rig2 = Rig::new(cfg, 2);
        // Core 0 is busy with many requests.
        let mut big = CoreLink::new(16, LAT);
        std::mem::swap(&mut rig2.links[0], &mut big);
        for i in 0..6u64 {
            rig2.request(0, 0x8000 + 64 * i, MsiState::S);
        }
        rig2.request(1, 0x100_0000, MsiState::S);
        let t2 = rig2.run_until_resp(1, 0x100_0000, 500);
        assert_eq!(t, t2, "core 1 latency changed with core 0 load");
    }

    #[test]
    fn secure_sizing_never_backpressures_dram() {
        // 1 core, 12 MSHRs (24/2): even a flood of misses with writebacks
        // keeps DRAM inflight <= 24.
        let mut cfg = LlcConfig::paper_secure(1, 24);
        cfg.indexing = LlcIndexing::Base;
        let mut rig = Rig::new(cfg, 1);
        let mut big = CoreLink::new(64, LAT);
        std::mem::swap(&mut rig.links[0], &mut big);
        for i in 0..64u64 {
            rig.request(0, 0x100000 + i * 64 * 1024, MsiState::M);
        }
        for _ in 0..5000 {
            rig.tick();
            let _ = rig.links[0].down.pop(rig.now);
            assert!(rig.dram.inflight() <= 24);
        }
        assert_eq!(rig.dram.backpressure_events, 0);
    }
}
