//! Memory-hierarchy configuration.
//!
//! The defaults reproduce Figure 4 of the paper (the insecure BASE
//! configuration): 32 KiB 8-way L1s with 8 outstanding requests, a 1 MiB
//! 16-way inclusive LLC with 16 MSHRs, and a 2 GiB constant-latency DRAM
//! accepting 24 in-flight requests at 120 cycles.
//!
//! The seven evaluation variants are expressed as deltas on this
//! configuration; see [`LlcConfig`] and the `mi6-soc` crate's `Variant`.

/// Cache line size in bytes (fixed across the hierarchy).
pub const LINE_BYTES: u64 = 64;
/// log2 of the line size.
pub const LINE_SHIFT: u32 = 6;

/// Geometry and request capacity of one L1 cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Config {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Maximum outstanding misses (MSHRs).
    pub mshrs: usize,
    /// Load-to-use latency of a hit, in cycles.
    pub hit_latency: u32,
}

impl L1Config {
    /// Figure 4: 32 KiB, 8-way, max 8 requests.
    pub const fn paper() -> L1Config {
        L1Config {
            size_bytes: 32 << 10,
            ways: 8,
            mshrs: 8,
            hit_latency: 2,
        }
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        (self.size_bytes / (LINE_BYTES * self.ways as u64)) as usize
    }

    /// Total number of cache lines.
    pub const fn lines(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize
    }
}

impl Default for L1Config {
    fn default() -> L1Config {
        L1Config::paper()
    }
}

/// How the LLC set index is computed from a line address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlcIndexing {
    /// Insecure baseline: the low `set_bits` of the line address.
    Base,
    /// MI6 set partitioning (paper Section 5.2 / 7.2): the top
    /// `region_bits` of the index are replaced by the low bits of the
    /// DRAM-region ID, so each pair of DRAM regions maps to disjoint sets.
    ///
    /// For the single-core PART evaluation this models the index change
    /// from `A[9:0]` to `{R[1:0], A[7:0]}` with `region_bits = 2`.
    Partitioned {
        /// Number of index bits taken from the DRAM-region ID.
        region_bits: u32,
    },
}

/// How the LLC MSHRs are organized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOrg {
    /// One shared pool (insecure baseline; 16 entries in Figure 4).
    Shared {
        /// Pool size.
        total: usize,
    },
    /// The MISS evaluation model (paper Section 7.3): `total` entries
    /// sliced into `banks` banks by the low bits of the set index. A full
    /// target bank stalls *all* allocation (the paper's stated pessimistic
    /// approximation of per-bank independence).
    Banked {
        /// Total entries across banks.
        total: usize,
        /// Number of banks.
        banks: usize,
    },
    /// True MI6 partitioning (paper Section 5.2): a fixed number of
    /// entries statically owned by each core.
    PerCore {
        /// Entries owned by each core.
        per_core: usize,
    },
}

impl MshrOrg {
    /// Total MSHR entries for `cores` cores.
    pub const fn total(&self, cores: usize) -> usize {
        match *self {
            MshrOrg::Shared { total } | MshrOrg::Banked { total, .. } => total,
            MshrOrg::PerCore { per_core } => per_core * cores,
        }
    }
}

/// How messages are admitted into the LLC cache-access pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlcArbitration {
    /// Insecure baseline: a two-level mux — merge each message type across
    /// cores, then fixed priority across types. Admits one message per
    /// cycle whenever any is pending.
    Base,
    /// MI6 (paper Section 5.4.3, Figure 3): merge all message kinds
    /// *per core*, then a strict round-robin arbiter across cores — in
    /// cycle `T` only core `T % N` may enter, even if it has nothing to
    /// send.
    RoundRobin,
}

/// How the upgrade-response queue (UQ) is organized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UqOrg {
    /// Single shared FIFO (baseline, Figure 2) — head-of-line blocking
    /// across cores is possible.
    Shared,
    /// Per-core FIFOs (MI6, Figure 3) — head-of-line blocking stays within
    /// one core's responses. Total capacity unchanged.
    PerCore,
}

/// How the Downgrade-L1 logic scans MSHRs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DowngradeOrg {
    /// Single logic instance scanning all MSHRs, sending one downgrade
    /// request per cycle (baseline, Figure 2).
    Single,
    /// One duplicated logic instance per MSHR partition, each sending one
    /// downgrade request per cycle (MI6's chosen approach, Figure 3).
    PerPartition,
}

/// How DQ (the DRAM-request queue) dequeues entries that finished a cache
/// replacement (writeback followed by read).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DqOrg {
    /// Baseline: such an entry sends *both* the writeback and the read in
    /// one dequeue, blocking the DQ port for one extra cycle.
    TwoCycleDequeue,
    /// MI6 retry-bit scheme (paper Section 5.4.3): the dequeue sends only
    /// the writeback; the entry re-enters the cache-access pipeline and
    /// comes back through DQ as a pure miss. Dequeue always takes one
    /// cycle.
    RetryBit,
}

/// Full LLC configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Set indexing function.
    pub indexing: LlcIndexing,
    /// MSHR organization.
    pub mshrs: MshrOrg,
    /// Pipeline entry arbitration.
    pub arbitration: LlcArbitration,
    /// UQ organization.
    pub uq: UqOrg,
    /// Downgrade-L1 logic organization.
    pub downgrade: DowngradeOrg,
    /// DQ dequeue behaviour.
    pub dq: DqOrg,
    /// Latency of the cache-access pipeline (tag+data SRAM), in cycles.
    /// The ARB evaluation variant adds 8 to this (paper Section 7.4).
    pub pipeline_latency: u32,
}

impl LlcConfig {
    /// Figure 4 insecure baseline: 1 MiB, 16-way, 16 shared MSHRs.
    pub const fn paper_base() -> LlcConfig {
        LlcConfig {
            size_bytes: 1 << 20,
            ways: 16,
            indexing: LlcIndexing::Base,
            mshrs: MshrOrg::Shared { total: 16 },
            arbitration: LlcArbitration::Base,
            uq: UqOrg::Shared,
            downgrade: DowngradeOrg::Single,
            dq: DqOrg::TwoCycleDequeue,
            pipeline_latency: 8,
        }
    }

    /// The full MI6 secure LLC (Figure 3) for `cores` cores: per-core MSHR
    /// partitions sized to never backpressure DRAM, split UQs, duplicated
    /// Downgrade-L1, retry-bit DQ, round-robin arbiter, and partitioned
    /// indexing.
    pub const fn paper_secure(cores: usize, dram_max_inflight: usize) -> LlcConfig {
        // Section 5.2: at most dmax/2 MSHRs in total, divided by cores.
        let per_core = dram_max_inflight / 2 / cores;
        LlcConfig {
            size_bytes: 1 << 20,
            ways: 16,
            indexing: LlcIndexing::Partitioned { region_bits: 2 },
            mshrs: MshrOrg::PerCore { per_core },
            arbitration: LlcArbitration::RoundRobin,
            uq: UqOrg::PerCore,
            downgrade: DowngradeOrg::PerPartition,
            dq: DqOrg::RetryBit,
            pipeline_latency: 8,
        }
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        (self.size_bytes / (LINE_BYTES * self.ways as u64)) as usize
    }

    /// log2 of the number of sets.
    pub const fn set_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }
}

impl Default for LlcConfig {
    fn default() -> LlcConfig {
        LlcConfig::paper_base()
    }
}

/// DRAM controller configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Physical memory size in bytes.
    pub size_bytes: u64,
    /// Constant access latency in cycles (Figure 4: 120).
    pub latency: u32,
    /// Maximum in-flight requests before backpressure (Figure 4: 24).
    pub max_inflight: usize,
    /// Number of equally-sized DRAM regions (paper: 64).
    pub regions: usize,
}

impl DramConfig {
    /// Figure 4: 2 GiB, 120 cycles, 24 in flight, 64 regions.
    pub const fn paper() -> DramConfig {
        DramConfig {
            size_bytes: 2 << 30,
            latency: 120,
            max_inflight: 24,
            regions: 64,
        }
    }

    /// Size of one DRAM region in bytes.
    pub const fn region_bytes(&self) -> u64 {
        self.size_bytes / self.regions as u64
    }
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig::paper()
    }
}

/// Latency of one hop on a core↔LLC coherence link, in cycles.
pub const LINK_LATENCY: u32 = 2;
/// Capacity of each link FIFO, in messages.
pub const LINK_CAPACITY: usize = 4;

/// Aggregate configuration of the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MemConfig {
    /// Per-core L1 instruction cache.
    pub l1i: L1Config,
    /// Per-core L1 data cache.
    pub l1d: L1Config,
    /// Shared last-level cache.
    pub llc: LlcConfig,
    /// DRAM controller.
    pub dram: DramConfig,
}

impl MemConfig {
    /// The paper's BASE configuration (Figure 4).
    pub const fn paper_base() -> MemConfig {
        MemConfig {
            l1i: L1Config::paper(),
            l1d: L1Config::paper(),
            llc: LlcConfig::paper_base(),
            dram: DramConfig::paper(),
        }
    }

    /// The full MI6 secure configuration for `cores` cores.
    pub const fn paper_secure(cores: usize) -> MemConfig {
        let dram = DramConfig::paper();
        MemConfig {
            l1i: L1Config::paper(),
            l1d: L1Config::paper(),
            llc: LlcConfig::paper_secure(cores, dram.max_inflight),
            dram,
        }
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for L1Config {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.size_bytes);
        w.usize(self.ways);
        w.usize(self.mshrs);
        w.u32(self.hit_latency);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(L1Config {
            size_bytes: r.u64()?,
            ways: r.usize()?,
            mshrs: r.usize()?,
            hit_latency: r.u32()?,
        })
    }
}

impl SnapState for LlcIndexing {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            LlcIndexing::Base => w.u8(0),
            LlcIndexing::Partitioned { region_bits } => {
                w.u8(1);
                w.u32(region_bits);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(LlcIndexing::Base),
            1 => Ok(LlcIndexing::Partitioned {
                region_bits: r.u32()?,
            }),
            other => Err(SnapError::BadValue {
                what: format!("LlcIndexing tag {other}"),
            }),
        }
    }
}

impl SnapState for MshrOrg {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            MshrOrg::Shared { total } => {
                w.u8(0);
                w.usize(total);
            }
            MshrOrg::Banked { total, banks } => {
                w.u8(1);
                w.usize(total);
                w.usize(banks);
            }
            MshrOrg::PerCore { per_core } => {
                w.u8(2);
                w.usize(per_core);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(MshrOrg::Shared { total: r.usize()? }),
            1 => Ok(MshrOrg::Banked {
                total: r.usize()?,
                banks: r.usize()?,
            }),
            2 => Ok(MshrOrg::PerCore {
                per_core: r.usize()?,
            }),
            other => Err(SnapError::BadValue {
                what: format!("MshrOrg tag {other}"),
            }),
        }
    }
}

macro_rules! two_way_enum_snap {
    ($ty:ident, $a:ident, $b:ident) => {
        impl SnapState for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.u8(match self {
                    $ty::$a => 0,
                    $ty::$b => 1,
                });
            }

            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                match r.u8()? {
                    0 => Ok($ty::$a),
                    1 => Ok($ty::$b),
                    other => Err(SnapError::BadValue {
                        what: format!(concat!(stringify!($ty), " tag {}"), other),
                    }),
                }
            }
        }
    };
}

two_way_enum_snap!(LlcArbitration, Base, RoundRobin);
two_way_enum_snap!(UqOrg, Shared, PerCore);
two_way_enum_snap!(DowngradeOrg, Single, PerPartition);
two_way_enum_snap!(DqOrg, TwoCycleDequeue, RetryBit);

impl SnapState for LlcConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.size_bytes);
        w.usize(self.ways);
        self.indexing.save(w);
        self.mshrs.save(w);
        self.arbitration.save(w);
        self.uq.save(w);
        self.downgrade.save(w);
        self.dq.save(w);
        w.u32(self.pipeline_latency);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(LlcConfig {
            size_bytes: r.u64()?,
            ways: r.usize()?,
            indexing: LlcIndexing::load(r)?,
            mshrs: MshrOrg::load(r)?,
            arbitration: LlcArbitration::load(r)?,
            uq: UqOrg::load(r)?,
            downgrade: DowngradeOrg::load(r)?,
            dq: DqOrg::load(r)?,
            pipeline_latency: r.u32()?,
        })
    }
}

impl SnapState for DramConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.size_bytes);
        w.u32(self.latency);
        w.usize(self.max_inflight);
        w.usize(self.regions);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DramConfig {
            size_bytes: r.u64()?,
            latency: r.u32()?,
            max_inflight: r.usize()?,
            regions: r.usize()?,
        })
    }
}

impl SnapState for MemConfig {
    fn save(&self, w: &mut SnapWriter) {
        self.l1i.save(w);
        self.l1d.save(w);
        self.llc.save(w);
        self.dram.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MemConfig {
            l1i: L1Config::load(r)?,
            l1d: L1Config::load(r)?,
            llc: LlcConfig::load(r)?,
            dram: DramConfig::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let l1 = L1Config::paper();
        assert_eq!(l1.sets(), 64);
        assert_eq!(l1.lines(), 512); // paper Sec 7.1: 512 lines per L1
    }

    #[test]
    fn paper_llc_geometry() {
        let llc = LlcConfig::paper_base();
        assert_eq!(llc.sets(), 1024); // 2^10 sets as in Sec 7.2
        assert_eq!(llc.set_bits(), 10);
    }

    #[test]
    fn paper_dram_regions() {
        let dram = DramConfig::paper();
        assert_eq!(dram.region_bytes(), 32 << 20); // 2 GiB / 64
    }

    #[test]
    fn secure_mshr_sizing_never_exceeds_half_dram() {
        // Section 5.2: #MSHRs <= dmax / 2.
        for cores in [1, 2, 4, 6, 12] {
            let cfg = LlcConfig::paper_secure(cores, 24);
            assert!(cfg.mshrs.total(cores) * 2 <= 24, "cores={cores}");
        }
    }

    #[test]
    fn mshr_totals() {
        assert_eq!(MshrOrg::Shared { total: 16 }.total(4), 16);
        assert_eq!(
            MshrOrg::Banked {
                total: 12,
                banks: 4
            }
            .total(4),
            12
        );
        assert_eq!(MshrOrg::PerCore { per_core: 3 }.total(4), 12);
    }
}
