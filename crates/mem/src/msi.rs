//! MSI directory-coherence message types.
//!
//! The LLC keeps the L1s coherent with an MSI directory protocol (paper
//! Section 5.4.1, citing [Vijayaraghavan et al., CAV'15]). Each L1 is a
//! *child* identified by [`ChildId`] (one instruction and one data cache
//! per core). Three message classes flow on each core's dedicated link:
//!
//! - child → parent **upgrade requests** ([`UpgradeReq`]): the L1 wants a
//!   line in S (load miss) or M (store miss / S→M upgrade).
//! - child → parent **downgrade responses** ([`DowngradeResp`]): the L1
//!   acknowledges a downgrade (with writeback data when it held M dirty),
//!   or voluntarily evicts a line — the protocol requires notification even
//!   for clean evictions (paper Section 7.1).
//! - parent → child **upgrade responses and downgrade requests**
//!   ([`ParentMsg`]).
//!
//! Data payloads are not carried (see [`crate::phys::PhysMem`] for the
//! functional/timing split); a writeback is a `dirty = true` response.

use mi6_isa::PhysAddr;
use std::fmt;

/// MSI stability states tracked by caches and the directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum MsiState {
    /// Invalid / not present.
    #[default]
    I,
    /// Shared (read-only).
    S,
    /// Modified (exclusive, writable).
    M,
}

impl MsiState {
    /// Whether this state satisfies a request for `want`.
    pub fn covers(self, want: MsiState) -> bool {
        self >= want
    }
}

impl fmt::Display for MsiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MsiState::I => "I",
            MsiState::S => "S",
            MsiState::M => "M",
        })
    }
}

/// Identifies one child cache of the LLC.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChildId(pub u16);

impl ChildId {
    /// The child for a core's L1 instruction cache.
    pub const fn l1i(core: usize) -> ChildId {
        ChildId((core * 2) as u16)
    }

    /// The child for a core's L1 data cache.
    pub const fn l1d(core: usize) -> ChildId {
        ChildId((core * 2 + 1) as u16)
    }

    /// The core this child belongs to.
    pub const fn core(self) -> usize {
        (self.0 / 2) as usize
    }

    /// Whether this is a data cache.
    pub const fn is_data(self) -> bool {
        self.0 % 2 == 1
    }

    /// Raw index (used for directory bitmaps).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChildId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChildId(core {} {})",
            self.core(),
            if self.is_data() { "L1D" } else { "L1I" }
        )
    }
}

/// Child → parent: request to upgrade a line to `want`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpgradeReq {
    /// Requesting child.
    pub child: ChildId,
    /// Line base address.
    pub line: PhysAddr,
    /// Desired state (S for loads/fetches, M for stores).
    pub want: MsiState,
}

/// Child → parent: downgrade acknowledgement or voluntary eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DowngradeResp {
    /// Responding child.
    pub child: ChildId,
    /// Line base address.
    pub line: PhysAddr,
    /// State the child now holds the line in (I or S).
    pub now: MsiState,
    /// Whether the child held modified data (a writeback).
    pub dirty: bool,
}

/// Parent → child messages (shared FIFO per link, per Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParentMsg {
    /// The upgrade the child asked for is granted.
    UpgradeResp {
        /// Line base address.
        line: PhysAddr,
        /// Granted state.
        granted: MsiState,
        /// Whether the fill came from DRAM rather than an LLC hit.
        /// Observability-only (CPI-stack serve levels): never read by
        /// timing logic and not serialized (defaults to `false` on
        /// snapshot restore).
        from_dram: bool,
    },
    /// The parent needs the child to downgrade the line to `to`.
    DowngradeReq {
        /// Line base address.
        line: PhysAddr,
        /// Required state (I to invalidate, S to demote from M).
        to: MsiState,
    },
}

impl ParentMsg {
    /// The line this message concerns.
    pub fn line(&self) -> PhysAddr {
        match *self {
            ParentMsg::UpgradeResp { line, .. } | ParentMsg::DowngradeReq { line, .. } => line,
        }
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for MsiState {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            MsiState::I => 0,
            MsiState::S => 1,
            MsiState::M => 2,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(MsiState::I),
            1 => Ok(MsiState::S),
            2 => Ok(MsiState::M),
            other => Err(SnapError::BadValue {
                what: format!("MSI state {other}"),
            }),
        }
    }
}

impl SnapState for ChildId {
    fn save(&self, w: &mut SnapWriter) {
        w.u16(self.0);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ChildId(r.u16()?))
    }
}

impl SnapState for UpgradeReq {
    fn save(&self, w: &mut SnapWriter) {
        self.child.save(w);
        self.line.save(w);
        self.want.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(UpgradeReq {
            child: ChildId::load(r)?,
            line: PhysAddr::load(r)?,
            want: MsiState::load(r)?,
        })
    }
}

impl SnapState for DowngradeResp {
    fn save(&self, w: &mut SnapWriter) {
        self.child.save(w);
        self.line.save(w);
        self.now.save(w);
        w.bool(self.dirty);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DowngradeResp {
            child: ChildId::load(r)?,
            line: PhysAddr::load(r)?,
            now: MsiState::load(r)?,
            dirty: r.bool()?,
        })
    }
}

impl SnapState for ParentMsg {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            ParentMsg::UpgradeResp { line, granted, .. } => {
                w.u8(0);
                line.save(w);
                granted.save(w);
            }
            ParentMsg::DowngradeReq { line, to } => {
                w.u8(1);
                line.save(w);
                to.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(ParentMsg::UpgradeResp {
                line: PhysAddr::load(r)?,
                granted: MsiState::load(r)?,
                from_dram: false,
            }),
            1 => Ok(ParentMsg::DowngradeReq {
                line: PhysAddr::load(r)?,
                to: MsiState::load(r)?,
            }),
            other => Err(SnapError::BadValue {
                what: format!("ParentMsg tag {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_ordering() {
        assert!(MsiState::M.covers(MsiState::S));
        assert!(MsiState::M.covers(MsiState::M));
        assert!(!MsiState::S.covers(MsiState::M));
        assert!(!MsiState::I.covers(MsiState::S));
    }

    #[test]
    fn child_ids() {
        assert_eq!(ChildId::l1i(0).index(), 0);
        assert_eq!(ChildId::l1d(0).index(), 1);
        assert_eq!(ChildId::l1d(3).index(), 7);
        assert_eq!(ChildId::l1d(3).core(), 3);
        assert!(ChildId::l1d(1).is_data());
        assert!(!ChildId::l1i(1).is_data());
    }

    #[test]
    fn parent_msg_line() {
        let a = PhysAddr::new(0x40);
        assert_eq!(
            ParentMsg::UpgradeResp {
                line: a,
                granted: MsiState::S,
                from_dram: false
            }
            .line(),
            a
        );
        assert_eq!(
            ParentMsg::DowngradeReq {
                line: a,
                to: MsiState::I
            }
            .line(),
            a
        );
    }
}
