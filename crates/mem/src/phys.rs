//! Sparse physical memory.
//!
//! The simulator separates *function* from *timing*: [`PhysMem`] holds the
//! architectural contents of DRAM and is read/written directly by the
//! functional side of the core (and by loaders and the security monitor),
//! while the cache models in this crate track tags and dirtiness only.
//! This is the standard functional/timing split of architectural
//! simulators; it is safe here because MI6 forbids memory sharing between
//! protection domains, so there is never a cross-core data race whose value
//! timing could change.

use mi6_isa::{PhysAddr, PAGE_SIZE};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_BYTES: usize = PAGE_SIZE as usize;

/// Multiply-shift hasher for page indices. Page numbers are small dense
/// integers and this map sits on the functional load/store/fetch path,
/// where SipHash is pure overhead; Fibonacci hashing spreads dense keys
/// across the table just as well.
#[derive(Clone, Default)]
pub(crate) struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("page keys hash via write_u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type PageMap = HashMap<u64, Box<[u8; PAGE_BYTES]>, BuildHasherDefault<PageHasher>>;

/// Byte-addressable sparse physical memory.
///
/// Pages are allocated lazily on first write; reads of untouched memory
/// return zero, like zero-initialized DRAM.
///
/// ```
/// use mi6_mem::PhysMem;
/// use mi6_isa::PhysAddr;
///
/// let mut mem = PhysMem::new(2 << 30);
/// mem.write_u64(PhysAddr::new(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u64(PhysAddr::new(0x1000)), 0xdead_beef);
/// assert_eq!(mem.read_u64(PhysAddr::new(0x2000)), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PhysMem {
    size: u64,
    pages: PageMap,
}

impl PhysMem {
    /// Creates a memory of `size` bytes (must be page-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of the page size.
    pub fn new(size: u64) -> PhysMem {
        assert!(
            size.is_multiple_of(PAGE_SIZE),
            "memory size must be page aligned"
        );
        PhysMem {
            size,
            pages: PageMap::default(),
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Whether `addr` is within the memory.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr.raw() < self.size
    }

    /// Number of pages actually allocated.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte. Out-of-range reads return 0 (the caller is expected
    /// to have validated the address; the core raises access faults before
    /// reaching memory).
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        let page = addr.raw() / PAGE_SIZE;
        match self.pages.get(&page) {
            Some(data) => data[(addr.raw() % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the memory.
    pub fn write_u8(&mut self, addr: PhysAddr, value: u8) {
        assert!(self.contains(addr), "physical write out of range: {addr}");
        let page = addr.raw() / PAGE_SIZE;
        let data = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
        data[(addr.raw() % PAGE_SIZE) as usize] = value;
    }

    /// Reads `n <= 8` little-endian bytes as a u64. Accesses may straddle
    /// page boundaries.
    pub fn read_bytes(&self, addr: PhysAddr, n: usize) -> u64 {
        debug_assert!(n <= 8);
        let off = (addr.raw() % PAGE_SIZE) as usize;
        if off + n <= PAGE_BYTES {
            // Within one page: a single map lookup and a slice copy,
            // instead of a hash lookup per byte.
            match self.pages.get(&(addr.raw() / PAGE_SIZE)) {
                None => 0,
                Some(data) => {
                    let mut buf = [0u8; 8];
                    buf[..n].copy_from_slice(&data[off..off + n]);
                    u64::from_le_bytes(buf)
                }
            }
        } else {
            let mut out = 0u64;
            for i in 0..n {
                out |= (self.read_u8(PhysAddr::new(addr.raw() + i as u64)) as u64) << (8 * i);
            }
            out
        }
    }

    /// Writes the low `n <= 8` bytes of `value`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if the access ends outside the memory.
    pub fn write_bytes(&mut self, addr: PhysAddr, value: u64, n: usize) {
        debug_assert!(n <= 8);
        let off = (addr.raw() % PAGE_SIZE) as usize;
        if off + n <= PAGE_BYTES {
            assert!(
                addr.raw() + n as u64 <= self.size,
                "physical write out of range: {addr}"
            );
            let data = self
                .pages
                .entry(addr.raw() / PAGE_SIZE)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            data[off..off + n].copy_from_slice(&value.to_le_bytes()[..n]);
        } else {
            for i in 0..n {
                self.write_u8(
                    PhysAddr::new(addr.raw() + i as u64),
                    (value >> (8 * i)) as u8,
                );
            }
        }
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        self.read_bytes(addr, 8)
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        self.write_bytes(addr, value, 8)
    }

    /// Reads a little-endian u32 (one instruction word).
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        self.read_bytes(addr, 4) as u32
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: PhysAddr, value: u32) {
        self.write_bytes(addr, value as u64, 4)
    }

    /// Copies a program image (32-bit words) to consecutive addresses.
    pub fn load_words(&mut self, base: PhysAddr, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u32(PhysAddr::new(base.raw() + 4 * i as u64), w);
        }
    }

    /// Zeroes `len` bytes starting at `base` (used by the security monitor
    /// to scrub DRAM regions before reassignment).
    pub fn scrub(&mut self, base: PhysAddr, len: u64) {
        // Drop whole pages where possible; zero partial pages.
        let mut addr = base.raw();
        let end = base.raw() + len;
        while addr < end {
            let page = addr / PAGE_SIZE;
            let page_start = page * PAGE_SIZE;
            let page_end = page_start + PAGE_SIZE;
            if addr == page_start && page_end <= end {
                self.pages.remove(&page);
                addr = page_end;
            } else {
                let stop = end.min(page_end);
                while addr < stop {
                    if self.pages.contains_key(&page) {
                        self.write_u8(PhysAddr::new(addr), 0);
                    }
                    addr += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

/// Pages are written in ascending page-index order so identical memory
/// contents always produce identical snapshot bytes (the backing map is
/// hash-ordered).
impl SnapState for PhysMem {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.size);
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        w.usize(indices.len());
        for idx in indices {
            w.u64(idx);
            w.bytes(&self.pages[&idx][..]);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let size = r.u64()?;
        if !size.is_multiple_of(PAGE_SIZE) {
            return Err(SnapError::BadValue {
                what: format!("memory size {size} not page aligned"),
            });
        }
        let n = r.len()?;
        let mut pages = PageMap::with_capacity_and_hasher(n, BuildHasherDefault::default());
        for _ in 0..n {
            let idx = r.u64()?;
            if idx >= size / PAGE_SIZE {
                return Err(SnapError::BadValue {
                    what: format!("page index {idx} outside memory"),
                });
            }
            let data: [u8; PAGE_BYTES] = r.bytes(PAGE_BYTES)?.try_into().expect("fixed-size page");
            pages.insert(idx, Box::new(data));
        }
        Ok(PhysMem { size, pages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mem = PhysMem::new(1 << 20);
        assert_eq!(mem.read_u64(PhysAddr::new(0x500)), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn read_write_round_trip() {
        let mut mem = PhysMem::new(1 << 20);
        mem.write_u64(PhysAddr::new(0x100), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(PhysAddr::new(0x100)), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(PhysAddr::new(0x100)), 0x08); // little endian
        assert_eq!(mem.read_u32(PhysAddr::new(0x104)), 0x0102_0304);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = PhysMem::new(1 << 20);
        mem.write_u64(PhysAddr::new(PAGE_SIZE - 4), 0x1122_3344_5566_7788);
        assert_eq!(
            mem.read_u64(PhysAddr::new(PAGE_SIZE - 4)),
            0x1122_3344_5566_7788
        );
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn partial_width_writes() {
        let mut mem = PhysMem::new(1 << 20);
        mem.write_u64(PhysAddr::new(0), u64::MAX);
        mem.write_bytes(PhysAddr::new(2), 0, 2);
        assert_eq!(mem.read_u64(PhysAddr::new(0)), 0xffff_ffff_0000_ffff);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_out_of_range_panics() {
        let mut mem = PhysMem::new(1 << 20);
        mem.write_u8(PhysAddr::new(1 << 20), 1);
    }

    #[test]
    fn load_words_places_program() {
        let mut mem = PhysMem::new(1 << 20);
        mem.load_words(PhysAddr::new(0x1000), &[0xaabbccdd, 0x11223344]);
        assert_eq!(mem.read_u32(PhysAddr::new(0x1000)), 0xaabbccdd);
        assert_eq!(mem.read_u32(PhysAddr::new(0x1004)), 0x11223344);
    }

    #[test]
    fn scrub_zeroes_and_releases() {
        let mut mem = PhysMem::new(1 << 20);
        mem.write_u64(PhysAddr::new(0x1000), 7);
        mem.write_u64(PhysAddr::new(0x2008), 9);
        mem.scrub(PhysAddr::new(0x1000), PAGE_SIZE);
        assert_eq!(mem.read_u64(PhysAddr::new(0x1000)), 0);
        // partial scrub
        mem.scrub(PhysAddr::new(0x2008), 8);
        assert_eq!(mem.read_u64(PhysAddr::new(0x2008)), 0);
    }
}
