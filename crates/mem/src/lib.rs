//! # mi6-mem
//!
//! The memory hierarchy of the MI6 reproduction: sparse physical memory,
//! DRAM regions and the per-core access bitvector, per-core L1 caches, MSI
//! directory coherence over per-core links, the RiscyOO last-level cache
//! with its Figure-2 internal microarchitecture, the MI6 Figure-3
//! strong-isolation LLC, and the constant-latency DRAM controller.
//!
//! Every mechanism the paper's Section 5 introduces is a configuration
//! toggle here, so the evaluation variants and the ablation benches can
//! enable them independently:
//!
//! | paper mechanism | knob |
//! |---|---|
//! | LLC set partitioning (Sec 5.2) | [`LlcIndexing::Partitioned`] |
//! | MSHR partitioning/sizing (Sec 5.2) | [`MshrOrg::PerCore`] / [`MshrOrg::Banked`] |
//! | Round-robin pipeline arbiter (Sec 5.4.3) | [`LlcArbitration::RoundRobin`] |
//! | Split UQs (Sec 5.4.3) | [`UqOrg::PerCore`] |
//! | Duplicated Downgrade-L1 (Sec 5.4.3) | [`DowngradeOrg::PerPartition`] |
//! | DQ retry bit (Sec 5.4.3) | [`DqOrg::RetryBit`] |
//! | Constant-latency DRAM (Sec 5.2) | [`DramConfig`] (always constant) |
//!
//! ## Example
//!
//! ```
//! use mi6_mem::{MemConfig, MemSystem, Port, L1Access};
//! use mi6_isa::PhysAddr;
//!
//! let mut sys = MemSystem::new(MemConfig::paper_base(), 1);
//! let mut now = 0u64;
//! // A cold access misses all the way to DRAM...
//! assert_eq!(
//!     sys.access(now, 0, Port::Data, 1, PhysAddr::new(0x4000), false),
//!     L1Access::Miss
//! );
//! while sys.take_completions(0, Port::Data).is_empty() {
//!     sys.tick(now);
//!     now += 1;
//! }
//! // ...and the refill makes the next access a 2-cycle hit.
//! assert!(matches!(
//!     sys.access(now, 0, Port::Data, 2, PhysAddr::new(0x4000), false),
//!     L1Access::Hit { .. }
//! ));
//! ```

pub mod config;
pub mod dram;
pub mod l1;
pub mod link;
pub mod llc;
pub mod msi;
pub mod obs;
pub mod phys;
pub mod region;
pub mod system;

pub use config::{
    DowngradeOrg, DqOrg, DramConfig, L1Config, LlcArbitration, LlcConfig, LlcIndexing, MemConfig,
    MshrOrg, UqOrg, LINE_BYTES, LINE_SHIFT,
};
pub use dram::{Dram, DramReq, DramResp};
pub use l1::{L1Access, L1Cache, L1Completion, L1Stats, ReqToken, ServeLevel};
pub use link::DelayFifo;
pub use llc::{CoreLink, Llc, LlcStats};
pub use msi::{ChildId, DowngradeResp, MsiState, ParentMsg, UpgradeReq};
pub use obs::MemObs;
pub use phys::PhysMem;
pub use region::{RegionBitvec, RegionId, RegionMap};
pub use system::{MemStallReason, MemSystem, Port};
