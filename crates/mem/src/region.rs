//! DRAM regions and the per-core access bitvector.
//!
//! MI6 divides physical memory equally into contiguous DRAM regions (paper
//! Section 5.2; 64 regions of 32 MiB for the 2 GiB Figure-4 machine). The
//! region ID is the highest bits of the physical address. Regions serve two
//! purposes:
//!
//! 1. **Cache isolation**: the partitioned LLC index uses the low bits of
//!    the region ID, so disjoint regions occupy disjoint LLC sets.
//! 2. **Access control**: each core carries a machine-mode-writable
//!    bitvector ([`RegionBitvec`], architecturally the `mregions` CSR); any
//!    physical access — speculative or not — outside the allowed regions is
//!    suppressed and faults only when it becomes non-speculative
//!    (paper Section 5.3).

use crate::config::DramConfig;
use mi6_isa::PhysAddr;
use std::fmt;

/// A DRAM region ID in `0..regions`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegionId({})", self.0)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region {}", self.0)
    }
}

/// Maps physical addresses to DRAM regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionMap {
    region_shift: u32,
    regions: u32,
}

impl RegionMap {
    /// Builds the map for a DRAM configuration.
    ///
    /// # Panics
    ///
    /// Panics unless the region count is a power of two that divides the
    /// memory size into power-of-two regions (required so that region bits
    /// are literally "the highest bits of the physical address").
    pub fn new(dram: &DramConfig) -> RegionMap {
        assert!(dram.regions.is_power_of_two(), "region count must be 2^k");
        let region_bytes = dram.region_bytes();
        assert!(
            region_bytes.is_power_of_two(),
            "region size must be a power of two"
        );
        RegionMap {
            region_shift: region_bytes.trailing_zeros(),
            regions: dram.regions as u32,
        }
    }

    /// Number of regions.
    pub const fn regions(&self) -> u32 {
        self.regions
    }

    /// Size of one region in bytes.
    pub const fn region_bytes(&self) -> u64 {
        1 << self.region_shift
    }

    /// The region containing a physical address.
    pub fn region_of(&self, addr: PhysAddr) -> RegionId {
        let r = (addr.raw() >> self.region_shift) as u32;
        debug_assert!(r < self.regions, "address outside DRAM: {addr}");
        RegionId(r.min(self.regions - 1))
    }

    /// The first byte of a region.
    pub fn base_of(&self, region: RegionId) -> PhysAddr {
        PhysAddr::new((region.0 as u64) << self.region_shift)
    }

    /// Whether a 4 KiB page fits entirely in one region (always true by
    /// construction; asserted in tests as the paper's TLB-caching argument
    /// relies on it).
    pub fn page_within_one_region(&self, page_base: PhysAddr) -> bool {
        self.region_of(page_base)
            == self.region_of(PhysAddr::new(page_base.raw() + mi6_isa::PAGE_SIZE - 1))
    }
}

/// A per-core DRAM-region permission bitvector (the `mregions` CSR).
///
/// ```
/// use mi6_mem::RegionBitvec;
/// use mi6_mem::RegionId;
///
/// let mut bv = RegionBitvec::none();
/// bv.allow(RegionId(3));
/// assert!(bv.allows(RegionId(3)));
/// assert!(!bv.allows(RegionId(4)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionBitvec(pub u64);

impl RegionBitvec {
    /// No regions allowed.
    pub const fn none() -> RegionBitvec {
        RegionBitvec(0)
    }

    /// All regions allowed (the hardware reset state; the monitor
    /// restricts it before running untrusted software).
    pub const fn all() -> RegionBitvec {
        RegionBitvec(u64::MAX)
    }

    /// Allows exactly the given regions.
    pub fn of(regions: impl IntoIterator<Item = RegionId>) -> RegionBitvec {
        let mut bv = RegionBitvec::none();
        for r in regions {
            bv.allow(r);
        }
        bv
    }

    /// Whether the region is allowed.
    pub const fn allows(self, region: RegionId) -> bool {
        self.0 >> region.0 & 1 != 0
    }

    /// Grants access to a region.
    pub fn allow(&mut self, region: RegionId) {
        self.0 |= 1 << region.0;
    }

    /// Revokes access to a region.
    pub fn deny(&mut self, region: RegionId) {
        self.0 &= !(1 << region.0);
    }

    /// Whether two bitvectors share any region (protection domains must
    /// not overlap).
    pub const fn overlaps(self, other: RegionBitvec) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of allowed regions.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the allowed regions, lowest first.
    pub fn iter(self) -> impl Iterator<Item = RegionId> {
        (0..64).filter(move |&i| self.0 >> i & 1 != 0).map(RegionId)
    }
}

impl fmt::Debug for RegionBitvec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RegionBitvec({:#018x}, {} regions)",
            self.0,
            self.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_isa::PAGE_SIZE;

    fn paper_map() -> RegionMap {
        RegionMap::new(&DramConfig::paper())
    }

    #[test]
    fn region_boundaries() {
        let map = paper_map();
        assert_eq!(map.regions(), 64);
        assert_eq!(map.region_bytes(), 32 << 20);
        assert_eq!(map.region_of(PhysAddr::new(0)), RegionId(0));
        assert_eq!(map.region_of(PhysAddr::new((32 << 20) - 1)), RegionId(0));
        assert_eq!(map.region_of(PhysAddr::new(32 << 20)), RegionId(1));
        assert_eq!(map.region_of(PhysAddr::new((2u64 << 30) - 1)), RegionId(63));
    }

    #[test]
    fn base_of_round_trips() {
        let map = paper_map();
        for r in [0u32, 1, 17, 63] {
            assert_eq!(map.region_of(map.base_of(RegionId(r))), RegionId(r));
        }
    }

    #[test]
    fn no_page_straddles_regions() {
        // Section 5.3: "no 4 KB page falls in two DRAM regions".
        let map = paper_map();
        for page in (0..(2u64 << 30)).step_by((256 << 20) as usize + PAGE_SIZE as usize) {
            let base = PhysAddr::new(page & !(PAGE_SIZE - 1));
            assert!(map.page_within_one_region(base), "page at {base}");
        }
    }

    #[test]
    fn bitvec_allow_deny() {
        let mut bv = RegionBitvec::none();
        bv.allow(RegionId(0));
        bv.allow(RegionId(63));
        assert!(bv.allows(RegionId(0)));
        assert!(bv.allows(RegionId(63)));
        assert_eq!(bv.count(), 2);
        bv.deny(RegionId(0));
        assert!(!bv.allows(RegionId(0)));
    }

    #[test]
    fn bitvec_overlap() {
        let a = RegionBitvec::of([RegionId(1), RegionId(2)]);
        let b = RegionBitvec::of([RegionId(2), RegionId(3)]);
        let c = RegionBitvec::of([RegionId(4)]);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
    }

    #[test]
    fn bitvec_iter() {
        let bv = RegionBitvec::of([RegionId(5), RegionId(1)]);
        let got: Vec<_> = bv.iter().collect();
        assert_eq!(got, vec![RegionId(1), RegionId(5)]);
    }
}
