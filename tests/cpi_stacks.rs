//! CPI-stack correctness: the always-on top-down attribution must
//! account *every* commit slot of *every* cycle — `sum(slots) ==
//! cycles × commit_width` — on every kernel shape that stresses a
//! different blocking reason, on both the insecure baseline and the full
//! enclave machine. A leaked or double-charged slot anywhere in the
//! commit/squash/purge/idle-skip paths breaks the equality, so this is
//! the pin that keeps future pipeline work honest about attribution.
//!
//! The artifact side rides along: `mi6_obs::STACK_CATEGORIES` is a
//! deliberate dependency-free duplicate of `mi6_core::CpiCategory`, and
//! the cross-crate test here is what keeps the two in lockstep.

use mi6::core::{CpiCategory, CpiStack, CPI_CATEGORIES};
use mi6::soc::{Machine, SimBuilder, Variant};
use mi6::workloads::{generate, BranchStyle, Profile, WorkloadParams};

/// The kernel shapes, each leaning on a different stack category:
/// store pressure (SB/SQ), load pressure (LQ + LLC hits), DRAM misses
/// (serve-level splits plus idle-skip), and mispredict-heavy control
/// flow (squash attribution).
fn kernels() -> Vec<(&'static str, Profile)> {
    let quiet = Profile {
        stream_bytes: 0,
        stream_lines_per_iter: 0,
        chase_bytes: 0,
        chase_nodes_per_iter: 0,
        ws_bytes: 0,
        ws_accesses_per_iter: 0,
        branch_sites: 2,
        branch_style: BranchStyle::Easy,
        ilp_ops: 2,
        muldiv_ops: 0,
        syscall_every: 0,
    };
    vec![
        (
            "store-heavy",
            Profile {
                ws_bytes: 16 << 10,
                ws_accesses_per_iter: 24,
                ..quiet
            },
        ),
        (
            "load-heavy",
            Profile {
                stream_bytes: 64 << 10,
                stream_lines_per_iter: 4,
                chase_bytes: 128 << 10,
                chase_nodes_per_iter: 8,
                ..quiet
            },
        ),
        (
            "miss-heavy",
            Profile {
                chase_bytes: 4 << 20,
                chase_nodes_per_iter: 8,
                ..quiet
            },
        ),
        (
            "branchy",
            Profile {
                branch_sites: 32,
                branch_style: BranchStyle::Hard,
                ilp_ops: 4,
                syscall_every: 48,
                ..quiet
            },
        ),
    ]
}

fn run_kernel(variant: Variant, name: &str, profile: &Profile) -> (Machine, u64) {
    let params = WorkloadParams::tiny().with_target_kinsts(40);
    let mut m = SimBuilder::new(variant)
        .timer_interval(50_000)
        .workload(0, generate(name, profile, &params))
        .build()
        .unwrap();
    let stats = m
        .run_to_completion(300_000_000)
        .unwrap_or_else(|e| panic!("running {name} on {variant}: {e}"));
    let committed = stats.core[0].committed_instructions;
    (m, committed)
}

fn check_stack(variant: Variant, name: &str, cpi: &CpiStack, width: u64, committed: u64, sys: u64) {
    assert!(cpi.cycles > 0, "{variant}/{name}: no cycles accounted");
    assert_eq!(
        cpi.total_slots(),
        cpi.cycles * width,
        "{variant}/{name}: slots leak — stack {cpi:?}"
    );
    // One Base slot per ordinary retirement. Redirecting system
    // instructions (ecall/ebreak/sret/mret/purge) count as committed but
    // charge their slot to the squash/flush they trigger, so the gap is
    // bounded by the redirect counters (+1 for the final halting ebreak).
    let base = cpi.get(CpiCategory::Base);
    assert!(
        base <= committed,
        "{variant}/{name}: more base slots than retirements"
    );
    assert!(
        committed - base <= sys + 1,
        "{variant}/{name}: base gap {} exceeds {sys} redirects",
        committed - base
    );
}

#[test]
fn sum_invariant_holds_on_every_kernel_shape_and_variant() {
    for variant in [Variant::Base, Variant::Fpma] {
        for (name, profile) in kernels() {
            let (m, committed) = run_kernel(variant, name, &profile);
            let core = m.core(0);
            let width = core.config().commit_width as u64;
            let s = &core.stats;
            let sys = s.traps + s.trap_returns + s.purges;
            check_stack(variant, name, &core.cpi, width, committed, sys);
        }
    }
}

#[test]
fn kernel_shapes_surface_their_expected_categories() {
    // DRAM-bound pointer chase: misses must be attributed to the DRAM
    // serve level, and the idle-skip fast-forward must show up as
    // explicit Idle slots rather than silently vanishing.
    let (name, profile) = &kernels()[2];
    let (m, _) = run_kernel(Variant::Base, name, profile);
    let cpi = &m.core(0).cpi;
    assert!(
        cpi.get(CpiCategory::MemDram) + cpi.get(CpiCategory::MemPending) > 0,
        "miss-heavy run attributes no DRAM/pending slots: {cpi:?}"
    );
    assert!(
        cpi.get(CpiCategory::Idle) > 0,
        "miss-heavy run never idle-skipped: {cpi:?}"
    );

    // Hard branches: squash shadows must attribute mispredict slots.
    let (name, profile) = &kernels()[3];
    let (m, _) = run_kernel(Variant::Base, name, profile);
    let cpi = &m.core(0).cpi;
    assert!(
        cpi.get(CpiCategory::SquashMispredict) > 0,
        "branchy run attributes no mispredict slots: {cpi:?}"
    );

    // The enclave machine flushes on every trap: the flush mechanism's
    // cost must be explicit in the stack.
    let (m, _) = run_kernel(Variant::Fpma, name, profile);
    let cpi = &m.core(0).cpi;
    assert!(
        cpi.get(CpiCategory::Flush) > 0,
        "F+P+M+A run attributes no flush slots: {cpi:?}"
    );
}

#[test]
fn obs_category_names_match_the_core_taxonomy() {
    assert_eq!(mi6_obs::STACK_CATEGORIES.len(), CPI_CATEGORIES);
    for (i, cat) in CpiCategory::ALL.into_iter().enumerate() {
        assert_eq!(
            mi6_obs::STACK_CATEGORIES[i],
            cat.name(),
            "category {i}: artifact schema diverged from the core taxonomy"
        );
        assert_eq!(cat.metric_name(), format!("cpi_{}", cat.name()));
    }
}
