//! Smoke tests: every evaluation variant runs a workload to completion,
//! and the gross performance ordering matches the paper.

use mi6::soc::{SimBuilder, Variant};
use mi6::workloads::{Workload, WorkloadParams};

fn run(variant: Variant, w: Workload, kinsts: u64) -> mi6::soc::MachineStats {
    let mut m = SimBuilder::new(variant)
        .timer_interval(50_000)
        .build()
        .unwrap();
    m.load_user_program(
        0,
        &w.build(&WorkloadParams::tiny().with_target_kinsts(kinsts)),
    )
    .unwrap();
    m.run_to_completion(300_000_000).unwrap()
}

#[test]
fn every_variant_completes() {
    for v in Variant::ALL {
        let stats = run(v, Workload::Bzip2, 30);
        assert!(
            stats.core[0].committed_instructions > 10_000,
            "{v}: {} inst",
            stats.core[0].committed_instructions
        );
    }
}

#[test]
fn nonspec_is_slowest() {
    let base = run(Variant::Base, Workload::H264ref, 40).cycles;
    let nonspec = run(Variant::NonSpec, Workload::H264ref, 40).cycles;
    assert!(
        nonspec > base * 2,
        "NONSPEC {nonspec} should be >2x BASE {base} on ILP-heavy code"
    );
}

#[test]
fn fpma_no_faster_than_base() {
    let base = run(Variant::Base, Workload::Gcc, 40).cycles;
    let fpma = run(Variant::Fpma, Workload::Gcc, 40).cycles;
    assert!(fpma > base, "F+P+M+A {fpma} vs BASE {base}");
}

#[test]
fn flush_overhead_scales_with_trap_rate() {
    // More timer traps -> more flush overhead.
    let run_timer = |interval: u64| {
        let mut m = SimBuilder::new(Variant::Flush)
            .timer_interval(interval)
            .build()
            .unwrap();
        m.load_user_program(
            0,
            &Workload::Sjeng.build(&WorkloadParams::tiny().with_target_kinsts(40)),
        )
        .unwrap();
        let stats = m.run_to_completion(300_000_000).unwrap();
        stats.core[0].flush_stall_cycles as f64 / stats.cycles as f64
    };
    let frequent = run_timer(20_000);
    let rare = run_timer(200_000);
    assert!(
        frequent > rare,
        "stall fraction should grow with trap rate: {frequent} vs {rare}"
    );
}
