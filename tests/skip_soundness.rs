//! Next-event soundness: the fast-forwarded machine must be
//! indistinguishable from a tick-every-cycle twin.
//!
//! `Core::next_event` mirrors `Core::tick` arm by arm, and every arm is a
//! separate opportunity to wake a cycle late (or early). Each kernel
//! below leans on one family of arms — exec completion times, the
//! unpipelined mul/div unit, store-buffer drain, parked mem-ops riding
//! DRAM misses, trap delivery mid-stall — and the test drives the same
//! program through `run_to_completion` (skips enabled) and through a
//! manual tick-every-cycle loop, then demands *byte-identical* final
//! machine state, not just equal stats.

use mi6::core::{CpiCategory, CpiStack};
use mi6::soc::{SimBuilder, Variant};
use mi6::workloads::{generate, BranchStyle, Profile, WorkloadParams};

fn quiet() -> Profile {
    Profile {
        stream_bytes: 0,
        stream_lines_per_iter: 0,
        chase_bytes: 0,
        chase_nodes_per_iter: 0,
        ws_bytes: 0,
        ws_accesses_per_iter: 0,
        branch_sites: 2,
        branch_style: BranchStyle::Easy,
        ilp_ops: 2,
        muldiv_ops: 0,
        syscall_every: 0,
    }
}

/// One stage-stressing kernel per `next_event` arm family:
/// (name, profile, timer_interval).
fn stage_kernels() -> Vec<(&'static str, Profile, u64)> {
    vec![
        // Issue/exec/rename/fetch arms: deep ALU dependence chains and
        // hard branches keep the IQs and fetch queue live.
        (
            "alu-branchy",
            Profile {
                ilp_ops: 6,
                branch_sites: 32,
                branch_style: BranchStyle::Hard,
                ..quiet()
            },
            0,
        ),
        // The unpipelined mul/div unit: `muldiv_busy_until` gates issue,
        // so its wake cycle must be contributed exactly.
        (
            "muldiv",
            Profile {
                muldiv_ops: 4,
                ilp_ops: 1,
                ..quiet()
            },
            0,
        ),
        // Store-buffer drain and L1-resident mem-op phases (AddrGen,
        // TlbLatency, WaitValue latencies).
        (
            "store-churn",
            Profile {
                ws_bytes: 16 << 10,
                ws_accesses_per_iter: 24,
                ..quiet()
            },
            0,
        ),
        // Parked WaitMem ops riding DRAM misses — the regime the skip
        // actually targets, with the timer firing mid-stall so trap
        // delivery during a skip window is pinned too.
        (
            "chase-miss",
            Profile {
                chase_bytes: 4 << 20,
                chase_nodes_per_iter: 8,
                ..quiet()
            },
            50_000,
        ),
        // Syscall traps plus page walks (WaitWalk parking, walker wakes).
        (
            "syscall-walks",
            Profile {
                ws_bytes: 1 << 20,
                ws_accesses_per_iter: 8,
                syscall_every: 200,
                ..quiet()
            },
            25_000,
        ),
    ]
}

#[test]
fn fast_forward_matches_tick_every_cycle_per_stage() {
    let mut total_skipped = 0;
    for (name, profile, timer) in stage_kernels() {
        let params = WorkloadParams::tiny().with_target_kinsts(15);
        let build = || {
            let b = SimBuilder::new(Variant::Base);
            let b = if timer == 0 {
                b.without_timer()
            } else {
                b.timer_interval(timer)
            };
            b.workload(0, generate(name, &profile, &params))
                .build()
                .unwrap()
        };
        let mut skip = build();
        let mut twin = build();
        let mut stats = skip
            .run_to_completion(200_000_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        while !twin.all_halted() && twin.now() < skip.now() {
            twin.tick();
        }
        assert_eq!(skip.now(), twin.now(), "{name}: halt cycles diverged");
        // `cycles_ticked` is the one field that legitimately differs: it
        // reports the ticked/fast-forwarded split this test exists to
        // create. Align it, then demand everything else identical.
        let mut twin_stats = twin.stats();
        assert_eq!(
            twin_stats.cycles_ticked,
            twin.now(),
            "{name}: twin must not skip"
        );
        twin_stats.cycles_ticked = stats.cycles_ticked;
        // The CPI stack attributes fast-forwarded cycles to the explicit
        // `Idle` category, while the tick-every twin (which by definition
        // never skips) charges those same cycles to the live blocking
        // reason. That split is the *only* legitimate difference: both
        // stacks account every slot, the twin has no Idle, the skip run's
        // Idle is exactly the skipped cycles, and every other category
        // can only lose slots to Idle, never gain.
        let width = skip.core(0).config().commit_width as u64;
        let skipped = skip.now() - skip.ticks();
        let (s_cpi, t_cpi) = (&stats.cpi[0], &twin_stats.cpi[0]);
        for (who, cpi) in [("skip", s_cpi), ("twin", t_cpi)] {
            assert_eq!(
                cpi.total_slots(),
                cpi.cycles * width,
                "{name}: {who} stack leaks slots: {cpi:?}"
            );
        }
        assert_eq!(
            s_cpi.get(CpiCategory::Idle),
            skipped * width,
            "{name}: Idle slots != skipped cycles × width"
        );
        assert_eq!(t_cpi.get(CpiCategory::Idle), 0, "{name}: twin went idle");
        for cat in CpiCategory::ALL {
            if cat != CpiCategory::Idle {
                assert!(
                    s_cpi.get(cat) <= t_cpi.get(cat),
                    "{name}: skip charged {cat:?} more than the twin \
                     ({} > {})",
                    s_cpi.get(cat),
                    t_cpi.get(cat)
                );
            }
        }
        for (i, (s, t)) in s_cpi.pressure().iter().zip(t_cpi.pressure()).enumerate() {
            assert!(
                *s <= t,
                "{name}: skip pressure counter {i} exceeds the twin's"
            );
        }
        // With the attribution relation pinned above, normalize the
        // stacks out of the byte-compare (their runtime bookkeeping —
        // pending-load residue — can also differ across skipped windows).
        stats.cpi = vec![CpiStack::default(); stats.cpi.len()];
        twin_stats.cpi = vec![CpiStack::default(); twin_stats.cpi.len()];
        assert_eq!(
            format!("{:?}", stats),
            format!("{:?}", twin_stats),
            "{name}: stats diverged"
        );
        assert_eq!(
            skip.snapshot(),
            twin.snapshot(),
            "{name}: final machine state diverged"
        );
        total_skipped += skip.now() - skip.ticks();
    }
    // The suite as a whole must actually exercise fast-forwarding (the
    // busy kernels may legitimately never go inert; cold misses and the
    // chase guarantee the total is large).
    assert!(
        total_skipped > 10_000,
        "only {total_skipped} cycles skipped"
    );
}
