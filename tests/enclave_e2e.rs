//! End-to-end: a SPEC-shaped workload running *as an enclave* under the
//! security monitor on the full MI6 machine, coexisting with an ordinary
//! OS process on the other core (the paper's deployment model).

use mi6::mem::{RegionBitvec, RegionId};
use mi6::monitor::{EnclaveState, SecurityMonitor};
use mi6::soc::{SimBuilder, Variant};
use mi6::workloads::{Workload, WorkloadParams};

#[test]
fn workload_runs_as_enclave() {
    let mut m = SimBuilder::new(Variant::SecureMi6)
        .cores(2)
        .without_timer()
        .build()
        .unwrap();
    let mut monitor = SecurityMonitor::new(&m);
    // hmmer as the enclave payload (stream fits in one region). Its
    // syscalls: none; it exits via ecall -> monitor.
    let program = Workload::Hmmer.build(&WorkloadParams::tiny().with_target_kinsts(20));
    let id = monitor
        .create_enclave(&mut m, &program, &[RegionId(9)])
        .expect("create");
    // An ordinary OS process occupies core 1 meanwhile.
    m.load_user_program(
        1,
        &Workload::Bzip2.build(&WorkloadParams::tiny().with_target_kinsts(20)),
    )
    .expect("os process");
    monitor.schedule(&mut m, 0, id).expect("schedule");
    // The enclave's region bitvector excludes the OS region.
    let bv = RegionBitvec(m.core(0).csrs.mregions);
    assert!(bv.allows(RegionId(9)));
    assert!(!bv.allows(RegionId(0)));
    let stats = m.run_to_completion(400_000_000).expect("both finish");
    assert!(stats.core[0].committed_instructions > 10_000);
    assert!(stats.core[1].committed_instructions > 10_000);
    // No region faults: the enclave stayed inside its allocation.
    assert_eq!(stats.core[0].region_faults, 0);
    monitor.deschedule(&mut m, id).expect("deschedule");
    assert_eq!(monitor.enclave_state(id).unwrap(), EnclaveState::Stopped);
    monitor.destroy(&mut m, id).expect("destroy");
    assert!(monitor.check_invariants());
}

#[test]
fn attestation_is_reproducible_across_machines() {
    let build = || {
        let mut m = SimBuilder::new(Variant::SecureMi6)
            .without_timer()
            .build()
            .unwrap();
        let mut monitor = SecurityMonitor::new(&m);
        let program = Workload::Hmmer.build(&WorkloadParams::tiny());
        let id = monitor
            .create_enclave(&mut m, &program, &[RegionId(9)])
            .unwrap();
        monitor.attest(id).unwrap()
    };
    let a = build();
    let b = build();
    assert_eq!(a.measurement, b.measurement);
    assert_eq!(a.signature, b.signature);
}
