//! Observability must be timing-neutral: re-running the golden reference
//! workload with pipeline tracing *and* metrics sampling enabled has to
//! reproduce the exact same stats fingerprint as the untraced run, and
//! the artifacts it writes must pass the `mi6-obs` schema checkers.
//!
//! The golden constants are duplicated from `golden_stats.rs` on
//! purpose: if a deliberate timing change updates one file but not the
//! other, the mismatch is a loud reminder that observability neutrality
//! was re-verified (or not) against the new numbers.

use mi6::soc::{MachineStats, SimBuilder, Variant};
use mi6::workloads::{Workload, WorkloadParams};
use std::path::PathBuf;

const GOLDEN_BASE: [u64; 8] = [69858, 35161, 587, 681, 3, 2052, 73, 2052];
const GOLDEN_FPMA: [u64; 8] = [79544, 35161, 743, 804, 3, 2054, 147, 2056];

fn fingerprint(stats: &MachineStats) -> [u64; 8] {
    let core = &stats.core[0];
    [
        stats.cycles,
        core.committed_instructions,
        core.branch_mispredicts,
        core.squashed_instructions,
        core.traps,
        stats.llc.misses,
        stats.llc.hits,
        stats.dram.0 + stats.dram.1,
    ]
}

/// The golden reference run with full observability attached. Returns
/// the stats and core 0's commit width (the CPI-stack slot divisor).
fn observed_run(variant: Variant, trace: &PathBuf, metrics: &PathBuf) -> (MachineStats, u64) {
    let mut m = SimBuilder::new(variant)
        .timer_interval(50_000)
        .workload(
            0,
            Workload::Gcc.build(&WorkloadParams::tiny().with_target_kinsts(40)),
        )
        .trace_path(trace)
        .metrics(metrics, 1_000)
        .build()
        .unwrap();
    let stats = m.run_to_completion(300_000_000).unwrap();
    let width = m.core(0).config().commit_width as u64;
    (stats, width)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mi6-obs-neutrality-{}-{name}", std::process::id()))
}

#[test]
fn tracing_and_metrics_do_not_perturb_golden_fingerprints() {
    for (variant, golden) in [(Variant::Base, GOLDEN_BASE), (Variant::Fpma, GOLDEN_FPMA)] {
        let trace = tmp(&format!("{variant:?}.trace"));
        let metrics = tmp(&format!("{variant:?}.metrics.jsonl"));
        let (stats, width) = observed_run(variant, &trace, &metrics);
        assert_eq!(
            fingerprint(&stats),
            golden,
            "{variant}: enabling trace+metrics changed the timing\nfull stats: {stats:?}"
        );

        // The always-on CPI stack accounted every commit slot of every
        // cycle — on the *golden* run, so the attribution demonstrably
        // never perturbed timing while staying exhaustive.
        let cpi = &stats.cpi[0];
        assert_eq!(
            cpi.total_slots(),
            cpi.cycles * width,
            "{variant}: CPI stack leaks slots: {cpi:?}"
        );
        assert_eq!(
            cpi.cycles, stats.core[0].cycles,
            "{variant}: stack cycle counter diverged from the core's"
        );

        // The trace must be a well-formed O3PipeView stream covering the
        // whole run: every committed and squashed op leaves a record.
        let tsum = mi6_obs::check_trace_file(&trace).expect("trace validates");
        assert!(
            tsum.ops as u64 >= stats.core[0].committed_instructions,
            "{variant}: trace has {} ops for {} committed instructions",
            tsum.ops,
            stats.core[0].committed_instructions
        );
        assert!(tsum.squashed > 0, "{variant}: no squashed ops traced");

        // The metrics stream must be schema-valid, sampled across the
        // run, and carry the headline occupancy series.
        let msum = mi6_obs::check_metrics_file(&metrics).expect("metrics validate");
        assert!(msum.rows > 0);
        let (first, last) = msum.cycle_range;
        assert!(first <= 1_000, "first sample late: {first}");
        assert!(
            last >= stats.cycles - 1_000,
            "last sample early: {last} of {} cycles",
            stats.cycles
        );
        for needed in [
            "rob_occupancy",
            "iq_occupancy",
            "mshr_occupancy",
            "arb_grants",
        ] {
            assert!(
                msum.metrics.iter().any(|m| m == needed),
                "{variant}: metric `{needed}` missing from {:?}",
                msum.metrics
            );
        }
        // Every CPI-stack category streams as a per-window counter, under
        // the same names the stacks artifact uses.
        for cat in mi6_obs::STACK_CATEGORIES {
            let metric = format!("cpi_{cat}");
            assert!(
                msum.metrics.contains(&metric),
                "{variant}: metric `{metric}` missing from {:?}",
                msum.metrics
            );
        }

        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&metrics).ok();
    }
}

/// Tracing with a cap must stop recording new ops at the cap without
/// touching timing, and still produce a valid (truncated) trace.
#[test]
fn trace_limit_truncates_without_perturbing_timing() {
    let trace = tmp("limited.trace");
    let metrics = tmp("limited.metrics.jsonl");
    let mut m = SimBuilder::new(Variant::Base)
        .timer_interval(50_000)
        .workload(
            0,
            Workload::Gcc.build(&WorkloadParams::tiny().with_target_kinsts(40)),
        )
        .trace_path(&trace)
        .trace_limit(2_000)
        .metrics(&metrics, 5_000)
        .build()
        .unwrap();
    let stats = m.run_to_completion(300_000_000).unwrap();
    assert_eq!(
        fingerprint(&stats),
        GOLDEN_BASE,
        "trace cap changed the timing\nfull stats: {stats:?}"
    );
    let tsum = mi6_obs::check_trace_file(&trace).expect("capped trace validates");
    assert!(
        tsum.ops <= 2_000,
        "cap of 2000 ops exceeded: {} ops",
        tsum.ops
    );
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&metrics).ok();
}
