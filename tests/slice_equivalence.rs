//! Slice-equivalence tests for the resumable run loop.
//!
//! `Machine::step_slice` promises that *any* sequence of positive budgets
//! performs the identical ticks and idle-skip jumps as one unbounded
//! call — same stats, same snapshot bytes, same golden fingerprints.
//! These tests drive the sliced path with adversarial budget sequences
//! (randomized, budget-1, and skip-spanning) against the same golden
//! constants `golden_stats.rs` pins for the one-shot path, so a slice
//! boundary that perturbs the probe cadence, splits a skip, or
//! double-counts a cycle shows up as a fingerprint mismatch.

use mi6::soc::{Machine, MachineStats, SimBuilder, SliceOutcome, Variant};
use mi6::workloads::{generate, BranchStyle, Profile, Workload, WorkloadParams};

/// Mirrors `tests/golden_stats.rs` — the contract both suites pin.
const GOLDEN_BASE: [u64; 8] = [69858, 35161, 587, 681, 3, 2052, 73, 2052];
const GOLDEN_FPMA: [u64; 8] = [79544, 35161, 743, 804, 3, 2054, 147, 2056];
const GOLDEN_IDLE: [u64; 8] = [881769, 18546, 64, 779, 19, 5873, 389, 5873];

const MAX_CYCLES: u64 = 300_000_000;

fn fingerprint(stats: &MachineStats) -> [u64; 8] {
    let core = &stats.core[0];
    [
        stats.cycles,
        core.committed_instructions,
        core.branch_mispredicts,
        core.squashed_instructions,
        core.traps,
        stats.llc.misses,
        stats.llc.hits,
        stats.dram.0 + stats.dram.1,
    ]
}

/// The gcc reference machine from `golden_stats.rs`.
fn reference_machine(variant: Variant) -> Machine {
    SimBuilder::new(variant)
        .timer_interval(50_000)
        .workload(
            0,
            Workload::Gcc.build(&WorkloadParams::tiny().with_target_kinsts(40)),
        )
        .build()
        .unwrap()
}

/// The idle-heavy reference machine: a DRAM-bound pointer chase whose
/// run is dominated by idle-skip jumps far longer than small slice
/// budgets — the regime where splitting a jump would corrupt timing.
fn idle_machine() -> Machine {
    let profile = Profile {
        stream_bytes: 0,
        stream_lines_per_iter: 0,
        chase_bytes: 4 << 20,
        chase_nodes_per_iter: 8,
        ws_bytes: 0,
        ws_accesses_per_iter: 0,
        branch_sites: 1,
        branch_style: BranchStyle::Easy,
        ilp_ops: 0,
        muldiv_ops: 0,
        syscall_every: 0,
    };
    let program = generate(
        "idle-heavy",
        &profile,
        &WorkloadParams::tiny().with_target_kinsts(20),
    );
    SimBuilder::new(Variant::Base)
        .timer_interval(50_000)
        .workload(0, program)
        .build()
        .unwrap()
}

/// Same generator the rest of the workspace uses for deterministic
/// pseudo-randomness (`splitmix64`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives a machine to completion through `step_slice` with budgets
/// drawn from `next_budget`, asserting the resumability contract at
/// every stop: `Blocked` never advances the clock and is satisfied by
/// granting *exactly* the jump length (the `target > slice_end`
/// boundary is strict), and `BudgetExhausted` never overshoots the
/// granted slice.
fn run_sliced(machine: &mut Machine, mut next_budget: impl FnMut() -> u64) -> MachineStats {
    machine.begin_run(MAX_CYCLES);
    let mut slices = 0u64;
    loop {
        let before = machine.now();
        let budget = next_budget().max(1);
        slices += 1;
        assert!(slices < 50_000_000, "sliced run failed to make progress");
        match machine.step_slice(budget) {
            SliceOutcome::Completed(stats) => return stats,
            SliceOutcome::BudgetExhausted { at_cycle } => {
                assert!(
                    at_cycle <= before + budget,
                    "slice overshot its budget: {before} + {budget} < {at_cycle}"
                );
            }
            SliceOutcome::Blocked { until_cycle } => {
                // The slice may have ticked busy cycles before the probe
                // found the jump, but the jump itself is never split:
                // the clock parks strictly short of the target, inside
                // the granted budget.
                assert!(
                    machine.now() < until_cycle && machine.now() <= before + budget,
                    "Blocked split a skip: now {} vs target {until_cycle} (slice {before}+{budget})",
                    machine.now()
                );
                assert!(until_cycle > before + budget, "spurious Blocked");
                // Grant exactly the jump length; the resume must take
                // the whole jump in one fast-forward.
                let after = machine.now();
                match machine.step_slice(until_cycle - after) {
                    SliceOutcome::Completed(stats) => return stats,
                    SliceOutcome::Blocked { .. } => {
                        panic!("an exact-length grant must cover the jump")
                    }
                    SliceOutcome::BudgetExhausted { .. } => {}
                    out => panic!("unexpected outcome mid-run: {out:?}"),
                }
            }
            out => panic!("unexpected outcome mid-run: {out:?}"),
        }
    }
}

#[test]
fn randomized_slices_reproduce_golden_fingerprints() {
    for (golden, build, name) in [
        (
            GOLDEN_BASE,
            Box::new(|| reference_machine(Variant::Base)) as Box<dyn Fn() -> Machine>,
            "BASE/gcc",
        ),
        (
            GOLDEN_FPMA,
            Box::new(|| reference_machine(Variant::Fpma)),
            "F+P+M+A/gcc",
        ),
        (GOLDEN_IDLE, Box::new(idle_machine), "BASE/idle-heavy"),
    ] {
        // Several seeds per configuration: budgets span 1..~8193, so
        // slices land inside busy stretches, mid-backoff, and right on
        // skip boundaries.
        for seed in [1u64, 0xC0FFEE, 0xDEAD_BEEF] {
            let mut rng = seed;
            let mut machine = build();
            let stats = run_sliced(&mut machine, || 1 + (splitmix64(&mut rng) & 0x1FFF));
            assert_eq!(
                fingerprint(&stats),
                golden,
                "{name} (seed {seed:#x}): sliced run diverged from the one-shot golden\n\
                 full stats: {stats:?}"
            );
        }
    }
}

#[test]
fn budget_of_one_cycle_reproduces_golden_fingerprints() {
    // The pathological schedule: every slice grants a single cycle, so
    // every tick and every skip decision happens at a slice boundary.
    let mut machine = reference_machine(Variant::Base);
    let stats = run_sliced(&mut machine, || 1);
    assert_eq!(
        fingerprint(&stats),
        GOLDEN_BASE,
        "budget=1 slicing diverged\nfull stats: {stats:?}"
    );
    // And on the idle-heavy run, where budget=1 forces a Blocked park
    // before nearly every multi-thousand-cycle DRAM skip.
    let mut machine = idle_machine();
    let stats = run_sliced(&mut machine, || 1);
    assert_eq!(
        fingerprint(&stats),
        GOLDEN_IDLE,
        "budget=1 slicing diverged on the idle-heavy run\nfull stats: {stats:?}"
    );
}

#[test]
fn sliced_run_matches_one_shot_bit_for_bit() {
    for variant in [Variant::Base, Variant::Fpma] {
        let mut one_shot = reference_machine(variant);
        let a = one_shot.run_to_completion(MAX_CYCLES).unwrap();
        let mut rng = 7u64;
        let mut sliced = reference_machine(variant);
        let b = run_sliced(&mut sliced, || 1 + (splitmix64(&mut rng) & 0xFFF));
        // Strongest practical equality: the full stats structure and the
        // serialized machine state agree byte for byte.
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{variant}: sliced stats differ from one-shot"
        );
        assert_eq!(
            one_shot.snapshot(),
            sliced.snapshot(),
            "{variant}: sliced snapshot bytes differ from one-shot"
        );
        assert_eq!(
            one_shot.ticks(),
            sliced.ticks(),
            "{variant}: ticked-cycle counts differ"
        );
    }
}
