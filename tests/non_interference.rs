//! The paper's Property 1, as an executable test: with the full MI6
//! configuration, a victim enclave's activity must not influence an
//! attacker enclave's timing *at all* (strong timing independence,
//! Section 5.4); on BASE the same experiment shows a timing channel.

use mi6::isa::{Assembler, Inst, Reg};
use mi6::mem::RegionId;
use mi6::monitor::SecurityMonitor;
use mi6::soc::loader::{Program, CODE_VA, DATA_VA};
use mi6::soc::{SimBuilder, Variant};

fn attacker(sweeps: u64) -> Program {
    let mut asm = Assembler::new(CODE_VA);
    asm.li(Reg::S0, DATA_VA);
    asm.li(Reg::S1, sweeps);
    let sweep = asm.here();
    asm.li(Reg::T0, 0);
    asm.li(Reg::T1, 64 << 10);
    let line = asm.here();
    asm.push(Inst::add(Reg::T2, Reg::S0, Reg::T0));
    asm.push(Inst::ld(Reg::T3, Reg::T2, 0));
    asm.push(Inst::addi(Reg::T0, Reg::T0, 64));
    asm.bne(Reg::T0, Reg::T1, line);
    asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
    asm.bnez(Reg::S1, sweep);
    asm.push(Inst::Ecall);
    Program {
        name: "attacker".into(),
        code: asm.assemble().unwrap(),
        data_size: 64 << 10,
        data_init: vec![],
        stack_size: 4096,
    }
}

/// Victim variants with *different* memory behaviour: the secret is
/// "which program is the victim running".
fn victim(kind: u32) -> Program {
    let mut asm = Assembler::new(CODE_VA);
    asm.li(Reg::S0, DATA_VA);
    asm.li(Reg::S2, (512 << 10) - 64);
    asm.li(Reg::T0, 0);
    let top = asm.here();
    match kind {
        0 => asm.nops(4), // silent
        1 => {
            // streaming hammer
            asm.push(Inst::add(Reg::T2, Reg::S0, Reg::T0));
            asm.push(Inst::ld(Reg::T3, Reg::T2, 0));
            asm.push(Inst::addi(Reg::T0, Reg::T0, 64));
            asm.push(Inst::And {
                rd: Reg::T0,
                rs1: Reg::T0,
                rs2: Reg::S2,
            });
        }
        _ => {
            // store hammer (writebacks)
            asm.push(Inst::add(Reg::T2, Reg::S0, Reg::T0));
            asm.push(Inst::sd(Reg::T3, Reg::T2, 0));
            asm.push(Inst::addi(Reg::T0, Reg::T0, 4096));
            asm.push(Inst::And {
                rd: Reg::T0,
                rs1: Reg::T0,
                rs2: Reg::S2,
            });
        }
    }
    asm.jump(top);
    Program {
        name: format!("victim-{kind}"),
        code: asm.assemble().unwrap(),
        data_size: 512 << 10,
        data_init: vec![],
        stack_size: 4096,
    }
}

fn attacker_finish(variant: Variant, victim_kind: u32) -> u64 {
    let mut m = SimBuilder::new(variant)
        .cores(2)
        .without_timer()
        .build()
        .unwrap();
    let mut monitor = SecurityMonitor::new(&m);
    let atk = monitor
        .create_enclave(&mut m, &attacker(12), &[RegionId(5)])
        .unwrap();
    let vic = monitor
        .create_enclave(&mut m, &victim(victim_kind), &[RegionId(6)])
        .unwrap();
    monitor.schedule(&mut m, 0, atk).unwrap();
    monitor.schedule(&mut m, 1, vic).unwrap();
    while !m.core(0).halted {
        m.tick();
        assert!(m.now() < 400_000_000, "attacker never finished");
    }
    m.now()
}

#[test]
fn mi6_strong_timing_independence() {
    // Under full MI6 the attacker's finish time must be *bit-identical*
    // for every victim behaviour.
    let t0 = attacker_finish(Variant::SecureMi6, 0);
    let t1 = attacker_finish(Variant::SecureMi6, 1);
    let t2 = attacker_finish(Variant::SecureMi6, 2);
    assert_eq!(t0, t1, "load-hammer victim leaked into attacker timing");
    assert_eq!(t0, t2, "store-hammer victim leaked into attacker timing");
}

#[test]
fn base_has_a_timing_channel() {
    // Sanity check of the experiment itself: on the insecure baseline the
    // victim's traffic IS visible to the attacker. (If this ever fails,
    // the non-interference test above is vacuous.)
    let quiet = attacker_finish(Variant::Base, 0);
    let noisy = attacker_finish(Variant::Base, 1);
    assert_ne!(quiet, noisy, "expected a timing channel on BASE");
}
