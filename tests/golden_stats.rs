//! Golden-stats determinism tests for the simulation kernel.
//!
//! The golden numbers below were captured from the pre-split monolithic
//! `core.rs` / `llc.rs` implementations on a fixed-seed workload; the
//! split pipeline-stage modules must reproduce them exactly (cycle-exact
//! refactor). If a *deliberate* timing-model change shifts them, update
//! the constants in the same commit and say so.

use mi6::soc::{MachineStats, SimBuilder, Variant};
use mi6::workloads::{generate, BranchStyle, Profile, Workload, WorkloadParams};

/// The fixed-seed reference run: gcc at 40 kinsts with a 50k-cycle timer
/// (exercises traps, the LLC, the branch predictors, and page walks).
fn reference_run(variant: Variant) -> MachineStats {
    let mut m = SimBuilder::new(variant)
        .timer_interval(50_000)
        .workload(
            0,
            Workload::Gcc.build(&WorkloadParams::tiny().with_target_kinsts(40)),
        )
        .build()
        .unwrap();
    m.run_to_completion(300_000_000).unwrap()
}

/// The stats fields a cycle-exact refactor must preserve.
fn fingerprint(stats: &MachineStats) -> [u64; 8] {
    let core = &stats.core[0];
    [
        stats.cycles,
        core.committed_instructions,
        core.branch_mispredicts,
        core.squashed_instructions,
        core.traps,
        stats.llc.misses,
        stats.llc.hits,
        stats.dram.0 + stats.dram.1,
    ]
}

#[test]
fn base_matches_golden() {
    let stats = reference_run(Variant::Base);
    assert_eq!(
        fingerprint(&stats),
        GOLDEN_BASE,
        "BASE fingerprint changed — the refactor is not cycle-exact\nfull stats: {stats:?}"
    );
}

#[test]
fn fpma_matches_golden() {
    let stats = reference_run(Variant::Fpma);
    assert_eq!(
        fingerprint(&stats),
        GOLDEN_FPMA,
        "F+P+M+A fingerprint changed — the refactor is not cycle-exact\nfull stats: {stats:?}"
    );
}

/// Captured from the monolithic implementation (see module docs), with
/// one deliberate timing change since: the store-buffer hit-latency fix
/// (PR 5) made drained stores occupy the SB for the modeled L1 hit
/// latency instead of retiring instantly, which costs this BASE run one
/// cycle (69857 → 69858; the F+P+M+A run is unaffected). The LSQ index
/// refactor in the same PR is timing-neutral — it reproduced the prior
/// constants exactly before the SB fix landed.
const GOLDEN_BASE: [u64; 8] = [69858, 35161, 587, 681, 3, 2052, 73, 2052];
const GOLDEN_FPMA: [u64; 8] = [79544, 35161, 743, 804, 3, 2054, 147, 2056];

/// The idle-heavy reference run: a dependent pointer chase over a 4 MiB
/// arena (4× the LLC), so nearly every load goes to DRAM and the core
/// spends most cycles fully stalled — exactly the regime the event-driven
/// fast-forward skips through. Captured *before* the fast-forward landed,
/// so this golden pins it to cycle-exactness where it is riskiest. The
/// timer keeps firing mid-stall, pinning trap delivery during skips too.
fn idle_reference_run() -> MachineStats {
    let profile = Profile {
        stream_bytes: 0,
        stream_lines_per_iter: 0,
        chase_bytes: 4 << 20,
        chase_nodes_per_iter: 8,
        ws_bytes: 0,
        ws_accesses_per_iter: 0,
        branch_sites: 1,
        branch_style: BranchStyle::Easy,
        ilp_ops: 0,
        muldiv_ops: 0,
        syscall_every: 0,
    };
    let program = generate(
        "idle-heavy",
        &profile,
        &WorkloadParams::tiny().with_target_kinsts(20),
    );
    let mut m = SimBuilder::new(Variant::Base)
        .timer_interval(50_000)
        .workload(0, program)
        .build()
        .unwrap();
    m.run_to_completion(300_000_000).unwrap()
}

#[test]
fn idle_heavy_matches_golden() {
    let stats = idle_reference_run();
    assert_eq!(
        fingerprint(&stats),
        GOLDEN_IDLE,
        "idle-heavy fingerprint changed — the fast-forward is not cycle-exact\nfull stats: {stats:?}"
    );
}

/// Captured from the tick-every-cycle implementation (before the
/// next-event fast-forward); the fast-forward must reproduce it exactly.
const GOLDEN_IDLE: [u64; 8] = [881769, 18546, 64, 779, 19, 5873, 389, 5873];

/// The snapshot round-trip property: interrupting the reference run at an
/// arbitrary mid-pipeline cycle, serializing the whole machine, restoring
/// into a freshly built one, and continuing must reproduce the exact
/// golden fingerprint of the uninterrupted run — for both BASE and the
/// F+P+M+A enclave configuration.
#[test]
fn snapshot_roundtrip_reproduces_golden_fingerprints() {
    for (variant, golden) in [(Variant::Base, GOLDEN_BASE), (Variant::Fpma, GOLDEN_FPMA)] {
        let mut warm = SimBuilder::new(variant)
            .timer_interval(50_000)
            .workload(
                0,
                Workload::Gcc.build(&WorkloadParams::tiny().with_target_kinsts(40)),
            )
            .build()
            .unwrap();
        // Deep mid-run: past several timer traps, with the pipeline and
        // memory hierarchy full of in-flight state.
        warm.run_cycles(55_000);
        assert!(
            !warm.all_halted(),
            "{variant}: snapshot point must be mid-run"
        );
        let snap = warm.snapshot();
        // Restore into a *fresh* machine built from the same configuration
        // (no workload placed — the snapshot carries memory and images).
        let mut resumed = SimBuilder::new(variant)
            .timer_interval(50_000)
            .build()
            .unwrap();
        resumed.restore(&snap).unwrap();
        let stats = resumed.run_to_completion(300_000_000).unwrap();
        assert_eq!(
            fingerprint(&stats),
            golden,
            "{variant}: snapshot+restore diverged from the uninterrupted run\nfull stats: {stats:?}"
        );
    }
}

/// A committed snapshot fixture, captured at cycle 55,000 of the BASE
/// reference run *before* the struct-of-arrays ROB landed (PR 7), must
/// still restore and finish on the golden fingerprint. This pins two
/// things at once: the SoA `Rob` reads the exact byte format the
/// array-of-structs implementation wrote (no `FORMAT_VERSION` bump), and
/// the derived LSQ index — including parked mem-op worklist membership —
/// is rebuilt correctly from deep mid-run state with loads, walks, and
/// traps in flight.
#[test]
fn pre_soa_fixture_restores_and_matches_golden() {
    let bytes = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pre_soa_base.mi6snap"
    ))
    .expect("fixture exists");
    let mut m = SimBuilder::new(Variant::Base)
        .timer_interval(50_000)
        .build()
        .unwrap();
    m.restore(&bytes).unwrap();
    assert_eq!(m.now(), 55_000, "fixture was captured at cycle 55k");
    let stats = m.run_to_completion(300_000_000).unwrap();
    assert_eq!(
        fingerprint(&stats),
        GOLDEN_BASE,
        "pre-SoA snapshot diverged after restore\nfull stats: {stats:?}"
    );
}

/// A snapshot must refuse to load into a machine whose configuration or
/// snapshot-format version does not match, with a clear error.
#[test]
fn snapshot_refuses_mismatched_config_and_version() {
    let mut m = SimBuilder::new(Variant::Base)
        .timer_interval(50_000)
        .workload(
            0,
            Workload::Gcc.build(&WorkloadParams::tiny().with_target_kinsts(40)),
        )
        .build()
        .unwrap();
    m.run_cycles(10_000);
    let snap = m.snapshot();
    // Wrong variant.
    let mut other = SimBuilder::new(Variant::Fpma)
        .timer_interval(50_000)
        .build()
        .unwrap();
    let err = other.restore(&snap).unwrap_err().to_string();
    assert!(err.contains("does not match"), "unhelpful error: {err}");
    // Wrong timer interval (same variant).
    let mut other = SimBuilder::new(Variant::Base).build().unwrap();
    assert!(other.restore(&snap).is_err());
    // Corrupt format version.
    let mut bad = snap.clone();
    bad[4] ^= 0xff;
    let mut same = SimBuilder::new(Variant::Base)
        .timer_interval(50_000)
        .build()
        .unwrap();
    let err = same.restore(&bad).unwrap_err().to_string();
    assert!(err.contains("version"), "unhelpful error: {err}");
}

#[test]
fn reruns_are_bit_identical() {
    for variant in [Variant::Base, Variant::Fpma] {
        let a = reference_run(variant);
        let b = reference_run(variant);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{variant} is nondeterministic"
        );
    }
}

#[test]
fn every_variant_smoke() {
    for variant in Variant::ALL {
        let mut m = SimBuilder::new(variant)
            .without_timer()
            .workload(
                0,
                Workload::Hmmer.build(&WorkloadParams::tiny().with_target_kinsts(10)),
            )
            .build()
            .unwrap();
        let stats = m.run_to_completion(100_000_000).unwrap();
        assert!(
            stats.core[0].committed_instructions > 5_000,
            "{variant}: {} instructions",
            stats.core[0].committed_instructions
        );
    }
}
